package ad

import (
	"math"
	"math/rand"
	"testing"

	"analogfold/internal/tensor"
)

// buildExpr constructs a small but op-diverse scalar expression over the
// given leaves (x: [n×3] requires-grad, w: [3×3] weight, plus stable index
// slices and a fused spec). It is a pure function of its inputs, so the same
// call sequence replays exactly on a tape.
func buildExpr(x, w *Var, gIdx, sIdx []int, spec *FusedRBF) *Var {
	y := MatMul(x, w)                     // [n×3]
	y = Add(SiLU(y), Mul(Tanh(y), x))     // elementwise mix
	y = ScatterAdd(Gather(y, gIdx), sIdx, x.Value.Shape[0])
	y = ConcatCols(Cols(y, 0, 1), Cols(y, 1, 3)) // identity re-assembly
	y = AddConst(Scale(y, 0.5), 0.25)
	psi := RBFDist(x, spec) // fused cost-distance expansion
	d := Sqrt(AddConst(Square(Cols(y, 0, 1)), 1e-3))
	return Add(Add(Sum(y), Sum(RBF(d, spec.Mus, 2.0))), Sum(psi))
}

type exprFixture struct {
	n          int
	gIdx, sIdx []int
	spec       *FusedRBF
}

func newExprFixture(rng *rand.Rand, n int) exprFixture {
	gIdx := make([]int, n)
	sIdx := make([]int, n)
	for i := range gIdx {
		gIdx[i] = rng.Intn(n)
		sIdx[i] = rng.Intn(n)
	}
	e := 2 * n
	spec := &FusedRBF{
		Idx: make([]int, e), H: make([]float64, e), W: make([]float64, e), Z: make([]float64, e),
		Mus: []float64{0, 0.5, 1.5}, Gamma: 3,
	}
	for i := 0; i < e; i++ {
		spec.Idx[i] = rng.Intn(n)
		spec.H[i] = rng.Float64() * 2
		spec.W[i] = rng.Float64() * 2
		spec.Z[i] = rng.Float64()
	}
	return exprFixture{n: n, gIdx: gIdx, sIdx: sIdx, spec: spec}
}

// evalFresh computes (loss, dLoss/dx) with a brand-new tapeless graph.
func (fx exprFixture) evalFresh(xT, wT *tensor.Tensor) (float64, *tensor.Tensor) {
	x := Leaf(xT.Clone(), true)
	w := Leaf(wT.Clone(), true)
	out := buildExpr(x, w, fx.gIdx, fx.sIdx, fx.spec)
	if err := Backward(out); err != nil {
		panic(err)
	}
	return out.Value.Data[0], x.Grad.Clone()
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestTapeReplayMatchesFresh drives many evaluations with changing inputs
// through one tape and checks every value and gradient is bit-identical to a
// fresh tapeless graph — the core equivalence the relaxation relies on.
func TestTapeReplayMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 5
	fx := newExprFixture(rng, n)
	xT := tensor.New(n, 3)
	wT := tensor.New(3, 3).Randn(rng, 0.5)

	tp := NewTape()
	x := tp.Leaf(xT, true)
	w := tp.Leaf(wT, false) // frozen weights: shared, non-differentiable
	for pass := 0; pass < 6; pass++ {
		for i := range xT.Data {
			xT.Data[i] = 0.1 + rng.Float64()
		}
		tp.Reset()
		out := buildExpr(x, w, fx.gIdx, fx.sIdx, fx.spec)
		if err := Backward(out); err != nil {
			t.Fatal(err)
		}
		wantF, wantG := fx.evalFresh(xT, wT)
		if math.Float64bits(out.Value.Data[0]) != math.Float64bits(wantF) {
			t.Fatalf("pass %d: tape loss %.17g, fresh %.17g", pass, out.Value.Data[0], wantF)
		}
		if !sameFloats(x.Grad.Data, wantG.Data) {
			t.Fatalf("pass %d: tape gradient diverged from fresh graph", pass)
		}
	}
	hits, misses := tp.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("stats: hits=%d misses=%d — first pass must record, later passes must replay", hits, misses)
	}
	if wantHits := misses * 5; hits != wantHits {
		t.Errorf("stats: hits=%d misses=%d — every post-warmup pass should be all hits (want %d)", hits, misses, wantHits)
	}
}

// TestTapeSteadyStateAllocs pins the tentpole: a steady-state forward +
// backward on a fixed topology performs at most a handful of allocations
// (the recursion bookkeeping), not the per-op node/tensor/closure churn of a
// fresh graph.
func TestTapeSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n = 6
	fx := newExprFixture(rng, n)
	xT := tensor.New(n, 3)
	for i := range xT.Data {
		xT.Data[i] = 0.1 + rng.Float64()
	}
	wT := tensor.New(3, 3).Randn(rng, 0.5)

	tp := NewTape()
	x := tp.Leaf(xT, true)
	w := tp.Leaf(wT, false)
	run := func() {
		tp.Reset()
		out := buildExpr(x, w, fx.gIdx, fx.sIdx, fx.spec)
		if err := Backward(out); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm-up records the tape and sizes every buffer
	run()
	allocs := testing.AllocsPerRun(50, run)
	if allocs > 4 {
		t.Errorf("steady-state forward+backward allocates %.1f objects, want ≤4", allocs)
	}
}

// TestTapeDivergenceRebuilds checks a tape is an optimization, not a
// constraint: building a different expression after Reset drops the stale
// suffix and still computes correct (fresh-graph-identical) results, and
// switching back re-records.
func TestTapeDivergenceRebuilds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 4
	fx := newExprFixture(rng, n)
	fx2 := newExprFixture(rng, n) // different indices → diverging graph
	xT := tensor.New(n, 3)
	for i := range xT.Data {
		xT.Data[i] = 0.2 + rng.Float64()
	}
	wT := tensor.New(3, 3).Randn(rng, 0.5)

	tp := NewTape()
	x := tp.Leaf(xT, true)
	w := tp.Leaf(wT, false)
	for pass, f := range []exprFixture{fx, fx2, fx, fx2} {
		tp.Reset()
		ZeroGrad(x)
		out := buildExpr(x, w, f.gIdx, f.sIdx, f.spec)
		if err := Backward(out); err != nil {
			t.Fatal(err)
		}
		wantF, wantG := f.evalFresh(xT, wT)
		if math.Float64bits(out.Value.Data[0]) != math.Float64bits(wantF) {
			t.Fatalf("pass %d: diverged tape loss %.17g, fresh %.17g", pass, out.Value.Data[0], wantF)
		}
		if !sameFloats(x.Grad.Data, wantG.Data) {
			t.Fatalf("pass %d: diverged tape gradient mismatch", pass)
		}
	}
}

// TestRepeatedBackwardGradReuse is the regression test for ZeroGrad/accum
// reallocating gradient tensors: across repeated ZeroGrad → forward →
// Backward cycles the parameter gradient buffer must be reused by pointer,
// and the cycle must not allocate new gradient tensors.
func TestRepeatedBackwardGradReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	xT := tensor.New(4, 3)
	for i := range xT.Data {
		xT.Data[i] = 0.3 + rng.Float64()
	}
	x := Leaf(xT, true)

	// Warm up: first backward allocates the buffer.
	if err := Backward(Sum(Square(x))); err != nil {
		t.Fatal(err)
	}
	buf := x.Grad
	for i := 0; i < 5; i++ {
		ZeroGrad(x)
		if err := Backward(Sum(Square(x))); err != nil {
			t.Fatal(err)
		}
		if x.Grad != buf {
			t.Fatalf("cycle %d: gradient buffer reallocated", i)
		}
	}

	// The tapeless graph still allocates nodes, but the leaf grad must not
	// contribute: pin that a full cycle stays well under the old
	// one-grad-tensor-per-node cost by comparing against a tape cycle, which
	// must do no grad allocation at all.
	tp := NewTape()
	tx := tp.Leaf(xT.Clone(), true)
	cycle := func() {
		tp.Reset()
		ZeroGrad(tx)
		if err := Backward(Sum(Square(tx))); err != nil {
			t.Fatal(err)
		}
	}
	cycle()
	cycle()
	if allocs := testing.AllocsPerRun(50, cycle); allocs > 0 {
		t.Errorf("tape ZeroGrad+Backward cycle allocates %.1f objects, want 0", allocs)
	}
}

// FuzzTapeReset drives random op DAGs through build → backward → reset →
// rebuild with mutated inputs, asserting the replayed tape graph matches a
// fresh tapeless graph bit-for-bit — values and input gradients — including
// occasional mid-sequence divergence to a second DAG.
func FuzzTapeReset(f *testing.F) {
	f.Add(int64(1), uint8(3), false)
	f.Add(int64(2), uint8(5), true)
	f.Add(int64(99), uint8(7), false)
	f.Fuzz(func(t *testing.T, seed int64, size uint8, diverge bool) {
		n := 3 + int(size%5)
		rng := rand.New(rand.NewSource(seed))
		fx := newExprFixture(rng, n)
		fx2 := newExprFixture(rng, n)
		xT := tensor.New(n, 3)
		wT := tensor.New(3, 3).Randn(rng, 0.5)

		tp := NewTape()
		x := tp.Leaf(xT, true)
		w := tp.Leaf(wT, false)
		for pass := 0; pass < 4; pass++ {
			for i := range xT.Data {
				xT.Data[i] = 0.05 + rng.Float64()
			}
			cur := fx
			if diverge && pass%2 == 1 {
				cur = fx2
			}
			tp.Reset()
			out := buildExpr(x, w, cur.gIdx, cur.sIdx, cur.spec)
			if err := Backward(out); err != nil {
				t.Fatal(err)
			}
			wantF, wantG := cur.evalFresh(xT, wT)
			if math.Float64bits(out.Value.Data[0]) != math.Float64bits(wantF) {
				t.Fatalf("pass %d: tape loss %.17g, fresh %.17g", pass, out.Value.Data[0], wantF)
			}
			if !sameFloats(x.Grad.Data, wantG.Data) {
				t.Fatalf("pass %d: tape-reused gradient != fresh-graph gradient", pass)
			}
		}
	})
}
