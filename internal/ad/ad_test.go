package ad

import (
	"math"
	"math/rand"
	"testing"

	"analogfold/internal/tensor"
)

// numGrad computes the finite-difference gradient of f w.r.t. leaf's data.
func numGrad(t *testing.T, leaf *tensor.Tensor, f func() float64) []float64 {
	t.Helper()
	const h = 1e-6
	g := make([]float64, len(leaf.Data))
	for i := range leaf.Data {
		orig := leaf.Data[i]
		leaf.Data[i] = orig + h
		fp := f()
		leaf.Data[i] = orig - h
		fm := f()
		leaf.Data[i] = orig
		g[i] = (fp - fm) / (2 * h)
	}
	return g
}

// checkGrad builds the graph via build (returning the scalar output), runs
// backward, and compares leaf gradients against finite differences.
func checkGrad(t *testing.T, leafT *tensor.Tensor, build func(leaf *Var) *Var) {
	t.Helper()
	leaf := Leaf(leafT, true)
	out := build(leaf)
	if err := Backward(out); err != nil {
		t.Fatal(err)
	}
	if leaf.Grad == nil {
		t.Fatal("no gradient accumulated")
	}
	want := numGrad(t, leafT, func() float64 {
		return build(Leaf(leafT, false)).Value.Data[0]
	})
	for i := range want {
		got := leaf.Grad.Data[i]
		if math.Abs(got-want[i]) > 1e-4*(1+math.Abs(want[i])) {
			t.Errorf("grad[%d] = %g, want %g", i, got, want[i])
		}
	}
}

func randT(seed int64, shape ...int) *tensor.Tensor {
	return tensor.New(shape...).Randn(rand.New(rand.NewSource(seed)), 1)
}

func TestGradAddMulSum(t *testing.T) {
	a := randT(1, 2, 3)
	b := Const(randT(2, 2, 3))
	checkGrad(t, a, func(leaf *Var) *Var {
		return Sum(Mul(Add(leaf, b), leaf))
	})
}

func TestGradSub(t *testing.T) {
	a := randT(3, 2, 2)
	b := Const(randT(4, 2, 2))
	checkGrad(t, a, func(leaf *Var) *Var {
		return Sum(Square(Sub(b, leaf)))
	})
}

func TestGradMatMul(t *testing.T) {
	a := randT(5, 3, 4)
	b := Const(randT(6, 4, 2))
	checkGrad(t, a, func(leaf *Var) *Var {
		return Sum(MatMul(leaf, b))
	})
	// Gradient w.r.t. the right operand too.
	c := randT(7, 4, 2)
	left := Const(randT(8, 3, 4))
	checkGrad(t, c, func(leaf *Var) *Var {
		return Sum(Square(MatMul(left, leaf)))
	})
}

func TestGradActivations(t *testing.T) {
	a := randT(9, 2, 5)
	checkGrad(t, a, func(leaf *Var) *Var { return Sum(SiLU(leaf)) })
	checkGrad(t, a, func(leaf *Var) *Var { return Sum(Tanh(leaf)) })
	// ReLU away from the kink.
	b := randT(10, 2, 5)
	for i := range b.Data {
		if math.Abs(b.Data[i]) < 0.1 {
			b.Data[i] = 0.5
		}
	}
	checkGrad(t, b, func(leaf *Var) *Var { return Sum(ReLU(leaf)) })
}

func TestGradSqrtLog(t *testing.T) {
	a := randT(11, 1, 4)
	for i := range a.Data {
		a.Data[i] = math.Abs(a.Data[i]) + 0.5
	}
	checkGrad(t, a, func(leaf *Var) *Var { return Sum(Sqrt(leaf)) })
	checkGrad(t, a, func(leaf *Var) *Var { return Sum(Log(leaf)) })
}

func TestGradAddRow(t *testing.T) {
	row := randT(12, 1, 3)
	m := Const(randT(13, 4, 3))
	checkGrad(t, row, func(leaf *Var) *Var {
		return Sum(Square(AddRow(m, leaf)))
	})
	a := randT(14, 4, 3)
	r := Const(randT(15, 1, 3))
	checkGrad(t, a, func(leaf *Var) *Var {
		return Sum(Square(AddRow(leaf, r)))
	})
}

func TestGradGatherScatter(t *testing.T) {
	a := randT(16, 4, 3)
	idx := []int{2, 0, 2, 1, 3}
	checkGrad(t, a, func(leaf *Var) *Var {
		return Sum(Square(Gather(leaf, idx)))
	})
	b := randT(17, 5, 3)
	checkGrad(t, b, func(leaf *Var) *Var {
		return Sum(Square(ScatterAdd(leaf, idx, 4)))
	})
}

func TestGradConcatCols(t *testing.T) {
	a := randT(18, 3, 2)
	b := Const(randT(19, 3, 4))
	checkGrad(t, a, func(leaf *Var) *Var {
		return Sum(Square(ConcatCols(leaf, b)))
	})
}

func TestGradColsSlice(t *testing.T) {
	a := randT(20, 3, 5)
	checkGrad(t, a, func(leaf *Var) *Var {
		return Sum(Square(Cols(leaf, 1, 4)))
	})
}

func TestGradRBF(t *testing.T) {
	a := randT(21, 6, 1)
	mus := []float64{0, 0.5, 1.0, 1.5}
	checkGrad(t, a, func(leaf *Var) *Var {
		return Sum(RBF(leaf, mus, 2.0))
	})
}

func TestGradMSE(t *testing.T) {
	a := randT(22, 2, 5)
	target := Const(randT(23, 2, 5))
	checkGrad(t, a, func(leaf *Var) *Var {
		return MSE(leaf, target)
	})
}

func TestGradCompositeNetwork(t *testing.T) {
	// A small two-layer network end-to-end: the realistic composition used
	// by the 3DGNN.
	x := Const(randT(24, 5, 3))
	w1 := randT(25, 3, 8)
	b1 := Const(randT(26, 1, 8))
	w2 := Const(randT(27, 8, 2))
	target := Const(randT(28, 5, 2))
	checkGrad(t, w1, func(leaf *Var) *Var {
		h := SiLU(AddRow(MatMul(x, leaf), b1))
		return MSE(MatMul(h, w2), target)
	})
}

func TestGradReusedNode(t *testing.T) {
	// A node consumed by two paths must accumulate both contributions:
	// f = sum(x*x) + sum(x) -> df/dx = 2x + 1.
	xT := randT(29, 2, 2)
	x := Leaf(xT, true)
	out := Add(Sum(Mul(x, x)), Sum(x))
	if err := Backward(out); err != nil {
		t.Fatal(err)
	}
	for i := range xT.Data {
		want := 2*xT.Data[i] + 1
		if math.Abs(x.Grad.Data[i]-want) > 1e-9 {
			t.Errorf("grad[%d] = %g, want %g", i, x.Grad.Data[i], want)
		}
	}
}

func TestBackwardNonScalarRejected(t *testing.T) {
	x := Leaf(randT(30, 2, 2), true)
	if err := Backward(x); err == nil {
		t.Errorf("Backward must reject non-scalar outputs")
	}
}

func TestNoGradThroughConst(t *testing.T) {
	c := Const(randT(31, 2, 2))
	x := Leaf(randT(32, 2, 2), true)
	out := Sum(Mul(c, x))
	if err := Backward(out); err != nil {
		t.Fatal(err)
	}
	if c.Grad != nil {
		t.Errorf("constants must not accumulate gradients")
	}
	if x.Grad == nil {
		t.Errorf("leaf must accumulate gradient")
	}
}

func TestZeroGrad(t *testing.T) {
	x := Leaf(randT(33, 1, 2), true)
	out := Sum(x)
	if err := Backward(out); err != nil {
		t.Fatal(err)
	}
	if !x.GradLive() {
		t.Fatalf("backward must mark the gradient live")
	}
	buf := x.Grad
	ZeroGrad(x)
	if x.GradLive() {
		t.Errorf("ZeroGrad must drop gradient liveness")
	}
	if x.Grad != buf {
		t.Errorf("ZeroGrad must keep the gradient buffer for reuse")
	}
	for _, v := range x.Grad.Data {
		if v != 0 {
			t.Errorf("ZeroGrad must zero the buffer in place, got %v", x.Grad.Data)
			break
		}
	}
	// A fresh backward reuses the very same buffer: the steady-state
	// training loop must stop reallocating parameter gradients.
	if err := Backward(Sum(x)); err != nil {
		t.Fatal(err)
	}
	if x.Grad != buf || !x.GradLive() {
		t.Errorf("repeated backward must accumulate into the kept buffer")
	}
}

func TestGradExpScaleMean(t *testing.T) {
	a := randT(34, 2, 3)
	checkGrad(t, a, func(leaf *Var) *Var { return Sum(Exp(leaf)) })
	checkGrad(t, a, func(leaf *Var) *Var { return Sum(Scale(leaf, -2.5)) })
	checkGrad(t, a, func(leaf *Var) *Var { return Sum(AddConst(leaf, 3)) })
	checkGrad(t, a, func(leaf *Var) *Var { return Mean(Square(leaf)) })
}

func TestGradDeepChain(t *testing.T) {
	// A long chain of mixed ops: gradients must stay correct through depth.
	a := randT(35, 1, 4)
	for i := range a.Data {
		a.Data[i] = 0.3 + math.Abs(a.Data[i])*0.2 // keep Log/Sqrt in-domain
	}
	checkGrad(t, a, func(leaf *Var) *Var {
		x := leaf
		x = SiLU(x)
		x = AddConst(x, 1.2)
		x = Log(x)
		x = Square(x)
		x = Exp(Scale(x, -0.5))
		x = Sqrt(AddConst(x, 0.1))
		return Mean(x)
	})
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("shape mismatch must panic")
		}
	}()
	Mul(Leaf(randT(36, 2, 3), true), Leaf(randT(37, 3, 2), true))
}

func TestScatterGatherComposition(t *testing.T) {
	// Gather(ScatterAdd(x)) round trip with a permutation index is identity.
	xT := randT(38, 5, 2)
	perm := []int{3, 1, 4, 0, 2}
	x := Leaf(xT, true)
	scattered := ScatterAdd(x, perm, 5)
	back := Gather(scattered, perm)
	diff := Sum(Square(Sub(back, x)))
	if diff.Value.Data[0] > 1e-18 {
		t.Errorf("permutation scatter/gather not an identity: %g", diff.Value.Data[0])
	}
	if err := Backward(diff); err != nil {
		t.Fatal(err)
	}
}
