// Tape arenas: steady-state reuse of the autodiff graph.
//
// The potential relaxation evaluates the same model on the same graph
// topology thousands of times — only the input values change. Rebuilding the
// Var graph from scratch every evaluation allocates a node, a value tensor,
// a deps slice and a backward closure per op, plus a gradient tensor and
// per-op scratch per backward pass; on the 3DGNN that is thousands of
// allocations per objective evaluation.
//
// A Tape removes all of it. Ops record their output nodes on the tape in
// call order. After Reset, rebuilding the same computation replays the
// recording: each op call is matched against the node at the cursor (same op
// kind, same dep pointers, same metadata) and, on a hit, reuses the recorded
// Var — its value buffer, its deps slice and its backward closure (valid
// because every pointer the closure captured is stable across a replay).
// Forward kernels always execute, writing fresh values into the reused
// buffers; only the bookkeeping is skipped. If a call diverges from the
// recording (a different graph is being built), the stale suffix is dropped
// and recording continues fresh from that point — the tape is an
// optimization, never a semantic constraint.
//
// Backward passes are allocation-free too: the topological order is rebuilt
// with epoch stamps instead of a visited map (into a tape-owned slice), the
// per-op gradient intermediates come from a scratch-tensor pool that resets
// every pass, and gradient accumulators are lazily zeroed by epoch instead
// of being reallocated. The traversal is the exact recursive DFS of the
// tapeless Backward, so gradient accumulation order — and therefore every
// floating-point result — is bit-identical with the tape on or off.
//
// Concurrency: a Tape and every requires-grad Var on it belong to one
// goroutine at a time. Non-differentiable inputs (Const leaves, frozen
// weights) may be shared across tapes; requires-grad leaves used with a tape
// must be created through Tape.Leaf.
package ad

import (
	"math"

	"analogfold/internal/tensor"
)

// op kinds, for replay matching.
const (
	opLeaf uint8 = iota
	opAdd
	opSub
	opMul
	opScale
	opAddConst
	opMatMul
	opAddRow
	opReLU
	opSiLU
	opTanh
	opSquare
	opSqrt
	opExp
	opLog
	opSum
	opGather
	opScatterAdd
	opConcatCols
	opCols
	opRBF
	opFusedRBF
)

// Tape records the op nodes of a rebuilt-per-evaluation computation so
// steady-state re-evaluations reuse them. Zero value is not usable; call
// NewTape.
type Tape struct {
	nodes []*Var
	pos   int

	// scratch tensors for backward intermediates, reused every pass.
	scr    []*tensor.Tensor
	scrPos int

	// order is the reusable topological-order buffer of backward.
	order []*Var
	// epoch identifies the current backward pass: gradient buffers stamped
	// with an older epoch are stale and lazily zeroed on first accumulation.
	// Epoch 0 is reserved as "never accumulated".
	epoch uint32

	hits, misses uint64
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset rewinds the tape so the next computation replays the recording from
// the start. Values and gradients of recorded nodes are left as-is; forward
// kernels overwrite values, and backward lazily zeroes gradients by epoch.
func (tp *Tape) Reset() { tp.pos = 0 }

// Leaf creates a graph input bound to the tape. requires-grad leaves must be
// tape-bound when used in tape computations, so their gradient epoch tracking
// follows the tape's backward passes; constant leaves are bound so ops on
// pure-constant subgraphs replay instead of reallocating.
func (tp *Tape) Leaf(t *tensor.Tensor, requiresGrad bool) *Var {
	return &Var{Value: t, requires: requiresGrad, op: opLeaf, tape: tp}
}

// Const creates a non-differentiable tape-bound input.
func (tp *Tape) Const(t *tensor.Tensor) *Var { return tp.Leaf(t, false) }

// Stats reports replay hits and misses since the tape was created — the
// steady-state diagnostic: a warmed tape on a fixed topology should show
// only hits.
func (tp *Tape) Stats() (hits, misses uint64) { return tp.hits, tp.misses }

// scratch returns a zeroed pooled tensor of the given shape for backward
// intermediates. Slots are handed out in call order and recycled every
// backward pass; since the pass replays identical back closures in an
// identical order, slot shapes stabilize after the first pass.
func (tp *Tape) scratch(shape []int) *tensor.Tensor {
	if tp.scrPos < len(tp.scr) {
		t := tp.scr[tp.scrPos]
		if shapeEq(t.Shape, shape) {
			tp.scrPos++
			t.Zero()
			return t
		}
		t = tensor.New(shape...)
		tp.scr[tp.scrPos] = t
		tp.scrPos++
		return t
	}
	t := tensor.New(shape...)
	tp.scr = append(tp.scr, t)
	tp.scrPos++
	return t
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// gradScratch returns a zeroed gradient intermediate for v's backward: tape
// nodes draw from the pass-scoped pool, tapeless nodes allocate (the legacy
// behavior).
func gradScratch(v *Var, shape []int) *tensor.Tensor {
	if tp := v.tape; tp != nil {
		return tp.scratch(shape)
	}
	return tensor.New(shape...)
}

// gradCopy returns a (pooled) copy of src for in-place modification by a
// backward closure.
func gradCopy(v *Var, src *tensor.Tensor) *tensor.Tensor {
	if tp := v.tape; tp != nil {
		t := tp.scratch(src.Shape)
		copy(t.Data, src.Data)
		return t
	}
	return src.Clone()
}

// visit appends v's requires-grad ancestors and then v to tp.order in
// post-order — the same recursive DFS as the tapeless Backward, so the
// reversed walk calls back closures, and therefore accumulates gradients, in
// the exact same sequence.
func (tp *Tape) visit(v *Var, ep uint32) {
	if v.visitEp == ep || !v.requires {
		return
	}
	v.visitEp = ep
	for _, d := range v.deps {
		tp.visit(d, ep)
	}
	tp.order = append(tp.order, v)
}

// backward is Backward for tape-bound scalars: identical traversal and
// accumulation order, no per-pass allocation.
func (tp *Tape) backward(out *Var) error {
	tp.epoch++
	tp.scrPos = 0
	tp.order = tp.order[:0]
	ep := tp.epoch
	tp.visit(out, ep)

	if out.Grad == nil {
		out.Grad = tensor.New(out.Value.Shape...)
	}
	out.Grad.Fill(1)
	out.gradEp = ep
	out.gradLive = true
	for i := len(tp.order) - 1; i >= 0; i-- {
		n := tp.order[i]
		if n.back != nil && n.gradEp == ep {
			n.back(n)
		}
	}
	return nil
}

// tapeOf returns the tape an op's output joins: the first input that lives
// on one.
func tapeOf(a, b *Var) *Tape {
	if a != nil && a.tape != nil {
		return a.tape
	}
	if b != nil && b.tape != nil {
		return b.tape
	}
	return nil
}

func sameIntSlice(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

func sameFloatSlice(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// obtain returns the output node for one op application. With no tape in
// sight it simply allocates (the legacy path). On a tape, the node recorded
// at the cursor is reused when it matches the application — same op kind,
// same dep pointers, same metadata, same output shape — keeping its value
// buffer, deps slice and backward closure; a mismatch means the caller is
// building a different computation, so the stale suffix is dropped and
// recording resumes. The second result reports whether the node is fresh
// (and thus needs its backward closure installed).
//
// r,c give the output shape; r < 0 means "same shape as a" (elementwise).
// k, im, fm and spec are op metadata (scalar constant, index slice, float
// slice, fused spec) matched by value or by slice identity — index and
// center slices are required to be stable across replays, which every
// caller guarantees by construction.
func obtain(op uint8, a, b *Var, k float64, im []int, fm []float64, spec *FusedRBF, r, c int) (*Var, bool) {
	tp := tapeOf(a, b)
	if tp == nil {
		return freshNode(nil, op, a, b, k, im, fm, spec, r, c), true
	}
	if tp.pos < len(tp.nodes) {
		n := tp.nodes[tp.pos]
		if n.op == op && n.k == k && n.fspec == spec &&
			sameIntSlice(n.im, im) && sameFloatSlice(n.fm, fm) &&
			depsMatch2(n.deps, a, b) &&
			(r < 0 || (n.Value.Shape[0] == r && n.Value.Shape[1] == c)) {
			tp.pos++
			tp.hits++
			return n, false
		}
		tp.nodes = tp.nodes[:tp.pos]
	}
	n := freshNode(tp, op, a, b, k, im, fm, spec, r, c)
	tp.nodes = append(tp.nodes, n)
	tp.pos++
	tp.misses++
	return n, true
}

func depsMatch2(deps []*Var, a, b *Var) bool {
	if b == nil {
		return len(deps) == 1 && deps[0] == a
	}
	return len(deps) == 2 && deps[0] == a && deps[1] == b
}

func freshNode(tp *Tape, op uint8, a, b *Var, k float64, im []int, fm []float64, spec *FusedRBF, r, c int) *Var {
	var val *tensor.Tensor
	if r < 0 {
		val = tensor.New(a.Value.Shape...)
	} else {
		val = tensor.New(r, c)
	}
	n := &Var{
		Value: val, op: op, tape: tp,
		k: k, im: im, fm: fm, fspec: spec,
		requires: a.requires || (b != nil && b.requires),
	}
	if b != nil {
		n.deps = []*Var{a, b}
	} else {
		n.deps = []*Var{a}
	}
	return n
}

// obtainN is obtain for variadic-dependency ops (ConcatCols).
func obtainN(op uint8, vs []*Var, r, c int) (*Var, bool) {
	var tp *Tape
	req := false
	for _, v := range vs {
		if v.tape != nil && tp == nil {
			tp = v.tape
		}
		if v.requires {
			req = true
		}
	}
	if tp != nil {
		if tp.pos < len(tp.nodes) {
			n := tp.nodes[tp.pos]
			if n.op == op && depsMatchN(n.deps, vs) &&
				n.Value.Shape[0] == r && n.Value.Shape[1] == c {
				tp.pos++
				tp.hits++
				return n, false
			}
			tp.nodes = tp.nodes[:tp.pos]
		}
	}
	n := &Var{
		Value: tensor.New(r, c), op: op, tape: tp,
		requires: req, deps: append([]*Var(nil), vs...),
	}
	if tp != nil {
		tp.nodes = append(tp.nodes, n)
		tp.pos++
		tp.misses++
	}
	return n, true
}

func depsMatchN(deps, vs []*Var) bool {
	if len(deps) != len(vs) {
		return false
	}
	for i := range vs {
		if deps[i] != vs[i] {
			return false
		}
	}
	return true
}

// FusedRBF is the retained spec of one fused cost-distance → RBF expansion.
// For edge i with extents (H[i], W[i], Z[i]) whose source lies on net
// Idx[i],
//
//	d_i     = sqrt((C[Idx[i],0]·H[i])² + (C[Idx[i],1]·W[i])² + (C[Idx[i],2]·Z[i])²)
//	out[i,j] = exp(-γ·(d_i - Mus[j])²)
//
// which fuses Eq. (1)–(3) of the paper into one op. The spec must outlive
// every node created from it and stay unmodified; replay matching is by spec
// pointer identity.
type FusedRBF struct {
	Idx     []int     // per-edge source-net row into C
	H, W, Z []float64 // per-edge extents
	Mus     []float64 // RBF centers µ
	Gamma   float64   // RBF width γ
}

// RBFDist applies a FusedRBF spec to the guidance matrix c ([numNets × 3]),
// producing the [numEdges × len(Mus)] expansion Ψ(d_cost).
//
// This op replaces the Gather → Cols×3 → Mul → Square → Add → Add → Sqrt →
// RBF chain the model used to materialize per edge set. Bit-identity with
// that chain is a hard requirement (the relaxation's golden trajectories pin
// it), so forward and backward replicate the chain's evaluation order
// exactly: every intermediate the chain materialized in a tensor appears
// here as an explicitly rounded float64 local (the float64 conversions force
// the rounding the chain's memory stores performed, guarding against fused
// multiply-add contraction on architectures where Go emits it).
func RBFDist(c *Var, spec *FusedRBF) *Var {
	n, k := len(spec.Idx), len(spec.Mus)
	out, fresh := obtain(opFusedRBF, c, nil, spec.Gamma, spec.Idx, spec.Mus, spec, n, k)
	gamma := spec.Gamma
	cd := c.Value.Data
	od := out.Value.Data
	for i, r := range spec.Idx {
		m0 := float64(cd[r*3] * spec.H[i])
		m1 := float64(cd[r*3+1] * spec.W[i])
		m2 := float64(cd[r*3+2] * spec.Z[i])
		s0 := float64(m0 * m0)
		s1 := float64(m1 * m1)
		s2 := float64(m2 * m2)
		sum := float64(float64(s0+s1) + s2)
		d := math.Sqrt(math.Max(sum, 0))
		for j, mu := range spec.Mus {
			diff := d - mu
			od[i*k+j] = math.Exp(-gamma * diff * diff)
		}
	}
	if fresh && out.requires {
		out.back = func(v *Var) {
			g := gradScratch(v, c.Value.Shape)
			vg := v.Grad.Data
			ovd := out.Value.Data
			ccd := c.Value.Data
			for i, r := range spec.Idx {
				// Recompute the forward locals (same inputs, same ops — the
				// same bits) instead of storing per-edge state.
				m0 := float64(ccd[r*3] * spec.H[i])
				m1 := float64(ccd[r*3+1] * spec.W[i])
				m2 := float64(ccd[r*3+2] * spec.Z[i])
				s0 := float64(m0 * m0)
				s1 := float64(m1 * m1)
				s2 := float64(m2 * m2)
				sum := float64(float64(s0+s1) + s2)
				d := math.Sqrt(math.Max(sum, 0))
				// RBF backward: ∂/∂d, accumulated over centers in j order.
				s := 0.0
				for j, mu := range spec.Mus {
					diff := d - mu
					s += vg[i*k+j] * ovd[i*k+j] * (-2 * gamma * diff)
				}
				// Sqrt backward with the chain's guarded denominator.
				d2 := 2 * d
				if d2 < 1e-12 {
					d2 = 1e-12
				}
				gsum := s / d2
				// Square then Mul backward per component, each product
				// rounded separately exactly as the chain's stored tensors
				// rounded them.
				q0 := float64(gsum * (2 * m0))
				q1 := float64(gsum * (2 * m1))
				q2 := float64(gsum * (2 * m2))
				g0 := float64(q0 * spec.H[i])
				g1 := float64(q1 * spec.W[i])
				g2 := float64(q2 * spec.Z[i])
				g.Data[r*3] += g0
				g.Data[r*3+1] += g1
				g.Data[r*3+2] += g2
			}
			c.accum(g)
		}
	}
	return out
}
