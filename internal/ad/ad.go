// Package ad implements reverse-mode automatic differentiation over
// tensor.Tensor values — the reproduction's replacement for torch autograd.
// The 3DGNN needs gradients both for training (w.r.t. weights) and for the
// paper's potential relaxation (w.r.t. the *input* routing guidance C), which
// a graph of Vars provides uniformly. Steady-state evaluation loops attach a
// Tape (tape.go) to reuse nodes, buffers and closures across rebuilds; the
// numerical behavior is identical either way.
package ad

import (
	"fmt"
	"math"

	"analogfold/internal/tensor"
)

// Var is one node of the computation graph.
type Var struct {
	Value *tensor.Tensor
	Grad  *tensor.Tensor

	requires bool
	deps     []*Var
	back     func(v *Var)

	// gradLive marks Grad as accumulated since the last ZeroGrad; now that
	// ZeroGrad keeps buffers, Grad != nil no longer implies a live gradient.
	gradLive bool

	// Tape bookkeeping (zero-valued and inert for tapeless graphs): the op
	// kind plus metadata identify the node during replay matching, and the
	// epoch stamps replace the visited map / grad reallocation of the
	// tapeless backward.
	tape    *Tape
	op      uint8
	k       float64
	im      []int
	fm      []float64
	fspec   *FusedRBF
	visitEp uint32
	gradEp  uint32
}

// Leaf creates a graph input. requiresGrad leaves accumulate gradients.
func Leaf(t *tensor.Tensor, requiresGrad bool) *Var {
	return &Var{Value: t, requires: requiresGrad, op: opLeaf}
}

// Const creates a non-differentiable graph input.
func Const(t *tensor.Tensor) *Var { return Leaf(t, false) }

// RequiresGrad reports whether gradients flow into this node.
func (v *Var) RequiresGrad() bool { return v.requires }

// GradLive reports whether v.Grad holds a gradient accumulated since the
// last ZeroGrad (for tape-bound nodes: during the tape's latest backward
// pass). Optimizers test it instead of Grad == nil, which stopped being a
// liveness signal when ZeroGrad started keeping buffers.
func (v *Var) GradLive() bool {
	if v.tape != nil {
		return v.gradEp != 0 && v.gradEp == v.tape.epoch
	}
	return v.gradLive
}

// SetGrad installs g as v's gradient and marks it live. Callers that reduce
// externally computed gradients into a parameter use it; a plain field
// assignment would leave the liveness flag stale and optimizers would skip
// the parameter.
func (v *Var) SetGrad(g *tensor.Tensor) {
	v.Grad = g
	v.gradLive = g != nil
	if v.tape != nil {
		if g != nil {
			v.gradEp = v.tape.epoch
		} else {
			v.gradEp = 0
		}
	}
}

// accum adds g into v.Grad, allocating the buffer on first use and keeping
// it afterwards. Tape-bound nodes lazily zero a stale buffer (one left over
// from an earlier backward pass) instead of reallocating.
func (v *Var) accum(g *tensor.Tensor) {
	if !v.requires {
		return
	}
	if v.Grad == nil {
		v.Grad = tensor.New(v.Value.Shape...)
	} else if tp := v.tape; tp != nil && v.gradEp != tp.epoch {
		v.Grad.Zero()
	}
	if tp := v.tape; tp != nil {
		v.gradEp = tp.epoch
	}
	v.gradLive = true
	for i, x := range g.Data {
		v.Grad.Data[i] += x
	}
}

// Backward runs reverse-mode differentiation from a scalar output.
func Backward(out *Var) error {
	if out.Value.Len() != 1 {
		return fmt.Errorf("ad: backward requires a scalar output, got shape %v", out.Value.Shape)
	}
	if tp := out.tape; tp != nil {
		return tp.backward(out)
	}
	// Topological order by DFS.
	var order []*Var
	seen := map[*Var]bool{}
	var visit func(v *Var)
	visit = func(v *Var) {
		if seen[v] || !v.requires {
			return
		}
		seen[v] = true
		for _, d := range v.deps {
			visit(d)
		}
		order = append(order, v)
	}
	visit(out)

	if out.Grad == nil {
		out.Grad = tensor.New(out.Value.Shape...)
	}
	out.Grad.Fill(1)
	out.gradLive = true
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.back != nil && n.Grad != nil {
			n.back(n)
		}
	}
	return nil
}

// ZeroGrad clears the gradients of the given leaves in place: an existing
// buffer is zeroed and kept rather than dropped, so steady-state training
// loops stop reallocating every parameter gradient each step. Liveness (for
// GradLive) is reset.
func ZeroGrad(vars ...*Var) {
	for _, v := range vars {
		if v.Grad != nil {
			v.Grad.Zero()
		}
		v.gradLive = false
		v.gradEp = 0
	}
}

func sameShape(a, b *Var, op string) {
	if !tensor.SameShape(a.Value, b.Value) {
		panic(fmt.Sprintf("ad: %s shape mismatch %v vs %v", op, a.Value.Shape, b.Value.Shape))
	}
}

// Add returns a + b (same shape).
func Add(a, b *Var) *Var {
	sameShape(a, b, "add")
	out, fresh := obtain(opAdd, a, b, 0, nil, nil, nil, -1, 0)
	od, bd := out.Value.Data, b.Value.Data
	for i, x := range a.Value.Data {
		od[i] = x + bd[i]
	}
	if fresh && out.requires {
		out.back = func(v *Var) {
			a.accum(v.Grad)
			b.accum(v.Grad)
		}
	}
	return out
}

// Sub returns a - b.
func Sub(a, b *Var) *Var {
	sameShape(a, b, "sub")
	out, fresh := obtain(opSub, a, b, 0, nil, nil, nil, -1, 0)
	od, bd := out.Value.Data, b.Value.Data
	for i, x := range a.Value.Data {
		od[i] = x - bd[i]
	}
	if fresh && out.requires {
		out.back = func(v *Var) {
			a.accum(v.Grad)
			if b.requires {
				neg := gradCopy(v, v.Grad)
				for i := range neg.Data {
					neg.Data[i] = -neg.Data[i]
				}
				b.accum(neg)
			}
		}
	}
	return out
}

// Mul returns the elementwise product a ⊙ b.
func Mul(a, b *Var) *Var {
	sameShape(a, b, "mul")
	out, fresh := obtain(opMul, a, b, 0, nil, nil, nil, -1, 0)
	od, bd := out.Value.Data, b.Value.Data
	for i, x := range a.Value.Data {
		od[i] = x * bd[i]
	}
	if fresh && out.requires {
		out.back = func(v *Var) {
			if a.requires {
				g := gradCopy(v, v.Grad)
				for i := range g.Data {
					g.Data[i] *= b.Value.Data[i]
				}
				a.accum(g)
			}
			if b.requires {
				g := gradCopy(v, v.Grad)
				for i := range g.Data {
					g.Data[i] *= a.Value.Data[i]
				}
				b.accum(g)
			}
		}
	}
	return out
}

// Scale returns a * k for a constant k.
func Scale(a *Var, k float64) *Var {
	out, fresh := obtain(opScale, a, nil, k, nil, nil, nil, -1, 0)
	od := out.Value.Data
	for i, x := range a.Value.Data {
		od[i] = x * k
	}
	if fresh && out.requires {
		out.back = func(v *Var) {
			g := gradCopy(v, v.Grad)
			for i := range g.Data {
				g.Data[i] *= k
			}
			a.accum(g)
		}
	}
	return out
}

// AddConst returns a + k elementwise.
func AddConst(a *Var, k float64) *Var {
	out, fresh := obtain(opAddConst, a, nil, k, nil, nil, nil, -1, 0)
	od := out.Value.Data
	for i, x := range a.Value.Data {
		od[i] = x + k
	}
	if fresh && out.requires {
		out.back = func(v *Var) { a.accum(v.Grad) }
	}
	return out
}

// MatMul returns a @ b for 2-D vars.
func MatMul(a, b *Var) *Var {
	out, fresh := obtain(opMatMul, a, b, 0, nil, nil, nil, a.Value.Shape[0], b.Value.Shape[1])
	tensor.MatMulInto(out.Value, a.Value, b.Value)
	if fresh && out.requires {
		out.back = func(v *Var) {
			if a.requires {
				g := gradScratch(v, a.Value.Shape)
				tensor.MatMulABTInto(g, v.Grad, b.Value)
				a.accum(g)
			}
			if b.requires {
				g := gradScratch(v, b.Value.Shape)
				tensor.MatMulATBInto(g, a.Value, v.Grad)
				b.accum(g)
			}
		}
	}
	return out
}

// AddRow broadcasts a 1×D row vector across an N×D matrix.
func AddRow(a, row *Var) *Var {
	if a.Value.Dims() != 2 || row.Value.Dims() != 2 || row.Value.Shape[0] != 1 ||
		row.Value.Shape[1] != a.Value.Shape[1] {
		panic(fmt.Sprintf("ad: addrow shape mismatch %v + %v", a.Value.Shape, row.Value.Shape))
	}
	n, d := a.Value.Shape[0], a.Value.Shape[1]
	out, fresh := obtain(opAddRow, a, row, 0, nil, nil, nil, n, d)
	od, ad, rd := out.Value.Data, a.Value.Data, row.Value.Data
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			od[i*d+j] = ad[i*d+j] + rd[j]
		}
	}
	if fresh && out.requires {
		out.back = func(v *Var) {
			a.accum(v.Grad)
			if row.requires {
				g := gradScratch(v, row.Value.Shape)
				for i := 0; i < n; i++ {
					for j := 0; j < d; j++ {
						g.Data[j] += v.Grad.Data[i*d+j]
					}
				}
				row.accum(g)
			}
		}
	}
	return out
}

// ReLU applies max(0, x).
func ReLU(a *Var) *Var {
	out, fresh := obtain(opReLU, a, nil, 0, nil, nil, nil, -1, 0)
	tensor.ApplyInto(out.Value, a.Value, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
	if fresh && out.requires {
		out.back = func(v *Var) {
			g := gradCopy(v, v.Grad)
			for i, x := range a.Value.Data {
				if x <= 0 {
					g.Data[i] = 0
				}
			}
			a.accum(g)
		}
	}
	return out
}

// SiLU applies x·sigmoid(x) (the smooth activation used by the message MLPs;
// smoothness matters because relaxation differentiates through the network).
func SiLU(a *Var) *Var {
	out, fresh := obtain(opSiLU, a, nil, 0, nil, nil, nil, -1, 0)
	tensor.ApplyInto(out.Value, a.Value, func(x float64) float64 { return x * sigmoid(x) })
	if fresh && out.requires {
		out.back = func(v *Var) {
			g := gradCopy(v, v.Grad)
			for i, x := range a.Value.Data {
				s := sigmoid(x)
				g.Data[i] *= s + x*s*(1-s)
			}
			a.accum(g)
		}
	}
	return out
}

// Tanh applies tanh elementwise.
func Tanh(a *Var) *Var {
	out, fresh := obtain(opTanh, a, nil, 0, nil, nil, nil, -1, 0)
	tensor.ApplyInto(out.Value, a.Value, math.Tanh)
	if fresh && out.requires {
		out.back = func(v *Var) {
			g := gradCopy(v, v.Grad)
			for i := range g.Data {
				t := out.Value.Data[i]
				g.Data[i] *= 1 - t*t
			}
			a.accum(g)
		}
	}
	return out
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Square returns x² elementwise.
func Square(a *Var) *Var {
	out, fresh := obtain(opSquare, a, nil, 0, nil, nil, nil, -1, 0)
	tensor.ApplyInto(out.Value, a.Value, func(x float64) float64 { return x * x })
	if fresh && out.requires {
		out.back = func(v *Var) {
			g := gradCopy(v, v.Grad)
			for i, x := range a.Value.Data {
				g.Data[i] *= 2 * x
			}
			a.accum(g)
		}
	}
	return out
}

// Sqrt returns √x elementwise, guarded at zero.
func Sqrt(a *Var) *Var {
	out, fresh := obtain(opSqrt, a, nil, 0, nil, nil, nil, -1, 0)
	tensor.ApplyInto(out.Value, a.Value, func(x float64) float64 { return math.Sqrt(math.Max(x, 0)) })
	if fresh && out.requires {
		out.back = func(v *Var) {
			g := gradCopy(v, v.Grad)
			for i := range g.Data {
				d := 2 * out.Value.Data[i]
				if d < 1e-12 {
					d = 1e-12
				}
				g.Data[i] /= d
			}
			a.accum(g)
		}
	}
	return out
}

// Exp returns e^x elementwise.
func Exp(a *Var) *Var {
	out, fresh := obtain(opExp, a, nil, 0, nil, nil, nil, -1, 0)
	tensor.ApplyInto(out.Value, a.Value, math.Exp)
	if fresh && out.requires {
		out.back = func(v *Var) {
			g := gradCopy(v, v.Grad)
			for i := range g.Data {
				g.Data[i] *= out.Value.Data[i]
			}
			a.accum(g)
		}
	}
	return out
}

// Log returns ln(x) elementwise; inputs must be positive.
func Log(a *Var) *Var {
	out, fresh := obtain(opLog, a, nil, 0, nil, nil, nil, -1, 0)
	tensor.ApplyInto(out.Value, a.Value, math.Log)
	if fresh && out.requires {
		out.back = func(v *Var) {
			g := gradCopy(v, v.Grad)
			for i, x := range a.Value.Data {
				g.Data[i] /= x
			}
			a.accum(g)
		}
	}
	return out
}

// Sum reduces all elements to a 1×1 scalar.
func Sum(a *Var) *Var {
	out, fresh := obtain(opSum, a, nil, 0, nil, nil, nil, 1, 1)
	s := 0.0
	for _, x := range a.Value.Data {
		s += x
	}
	out.Value.Data[0] = s
	if fresh && out.requires {
		out.back = func(v *Var) {
			g := gradScratch(v, a.Value.Shape)
			g.Fill(v.Grad.Data[0])
			a.accum(g)
		}
	}
	return out
}

// Mean reduces all elements to their average.
func Mean(a *Var) *Var {
	n := float64(a.Value.Len())
	return Scale(Sum(a), 1/n)
}

// Gather selects rows: out[i] = a[idx[i]] for a 2-D a. The idx slice must
// stay unmodified while the graph (or its tape) is alive.
func Gather(a *Var, idx []int) *Var {
	d := a.Value.Shape[1]
	out, fresh := obtain(opGather, a, nil, 0, idx, nil, nil, len(idx), d)
	for i, r := range idx {
		copy(out.Value.Data[i*d:(i+1)*d], a.Value.Data[r*d:(r+1)*d])
	}
	if fresh && out.requires {
		out.back = func(v *Var) {
			g := gradScratch(v, a.Value.Shape)
			for i, r := range idx {
				for j := 0; j < d; j++ {
					g.Data[r*d+j] += v.Grad.Data[i*d+j]
				}
			}
			a.accum(g)
		}
	}
	return out
}

// ScatterAdd sums rows of a into numRows buckets: out[idx[i]] += a[i]. The
// idx slice must stay unmodified while the graph (or its tape) is alive.
func ScatterAdd(a *Var, idx []int, numRows int) *Var {
	d := a.Value.Shape[1]
	out, fresh := obtain(opScatterAdd, a, nil, 0, idx, nil, nil, numRows, d)
	out.Value.Zero()
	for i, r := range idx {
		for j := 0; j < d; j++ {
			out.Value.Data[r*d+j] += a.Value.Data[i*d+j]
		}
	}
	if fresh && out.requires {
		out.back = func(v *Var) {
			g := gradScratch(v, a.Value.Shape)
			for i, r := range idx {
				for j := 0; j < d; j++ {
					g.Data[i*d+j] = v.Grad.Data[r*d+j]
				}
			}
			a.accum(g)
		}
	}
	return out
}

// ConcatCols concatenates 2-D vars along columns.
func ConcatCols(vs ...*Var) *Var {
	n := vs[0].Value.Shape[0]
	total := 0
	for _, v := range vs {
		if v.Value.Shape[0] != n {
			panic("ad: concat row mismatch")
		}
		total += v.Value.Shape[1]
	}
	out, fresh := obtainN(opConcatCols, vs, n, total)
	off := 0
	for _, v := range vs {
		d := v.Value.Shape[1]
		for i := 0; i < n; i++ {
			copy(out.Value.Data[i*total+off:i*total+off+d], v.Value.Data[i*d:(i+1)*d])
		}
		off += d
	}
	if fresh && out.requires {
		deps := out.deps
		out.back = func(v *Var) {
			off := 0
			for _, dep := range deps {
				d := dep.Value.Shape[1]
				if dep.requires {
					g := gradScratch(v, dep.Value.Shape)
					for i := 0; i < n; i++ {
						copy(g.Data[i*d:(i+1)*d], v.Grad.Data[i*total+off:i*total+off+d])
					}
					dep.accum(g)
				}
				off += d
			}
		}
	}
	return out
}

// Cols slices columns [j0, j1) of a 2-D var.
func Cols(a *Var, j0, j1 int) *Var {
	n, d := a.Value.Shape[0], a.Value.Shape[1]
	w := j1 - j0
	// j0 rides the metadata scalar so replay distinguishes column windows.
	out, fresh := obtain(opCols, a, nil, float64(j0), nil, nil, nil, n, w)
	for i := 0; i < n; i++ {
		copy(out.Value.Data[i*w:(i+1)*w], a.Value.Data[i*d+j0:i*d+j1])
	}
	if fresh && out.requires {
		out.back = func(v *Var) {
			g := gradScratch(v, a.Value.Shape)
			for i := 0; i < n; i++ {
				copy(g.Data[i*d+j0:i*d+j1], v.Grad.Data[i*w:(i+1)*w])
			}
			a.accum(g)
		}
	}
	return out
}

// RBF expands a column vector d (N×1) with radial basis functions:
// out[i,k] = exp(-γ·(d[i]-µ_k)²) — Eq. (3) of the paper. The mus slice must
// stay unmodified while the graph (or its tape) is alive.
func RBF(a *Var, mus []float64, gamma float64) *Var {
	n := a.Value.Shape[0]
	k := len(mus)
	out, fresh := obtain(opRBF, a, nil, gamma, nil, mus, nil, n, k)
	for i := 0; i < n; i++ {
		di := a.Value.Data[i]
		for j, mu := range mus {
			diff := di - mu
			out.Value.Data[i*k+j] = math.Exp(-gamma * diff * diff)
		}
	}
	if fresh && out.requires {
		out.back = func(v *Var) {
			g := gradScratch(v, a.Value.Shape)
			for i := 0; i < n; i++ {
				di := a.Value.Data[i]
				s := 0.0
				for j, mu := range mus {
					diff := di - mu
					s += v.Grad.Data[i*k+j] * out.Value.Data[i*k+j] * (-2 * gamma * diff)
				}
				g.Data[i] = s
			}
			a.accum(g)
		}
	}
	return out
}

// MSE returns the mean squared error between pred and target (L2 loss of
// Eq. 6).
func MSE(pred, target *Var) *Var {
	return Mean(Square(Sub(pred, target)))
}
