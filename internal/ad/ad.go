// Package ad implements reverse-mode automatic differentiation over
// tensor.Tensor values — the reproduction's replacement for torch autograd.
// The 3DGNN needs gradients both for training (w.r.t. weights) and for the
// paper's potential relaxation (w.r.t. the *input* routing guidance C), which
// a tape of Vars provides uniformly.
package ad

import (
	"fmt"
	"math"

	"analogfold/internal/tensor"
)

// Var is one node of the computation graph.
type Var struct {
	Value *tensor.Tensor
	Grad  *tensor.Tensor

	requires bool
	deps     []*Var
	back     func(v *Var)
}

// Leaf creates a graph input. requiresGrad leaves accumulate gradients.
func Leaf(t *tensor.Tensor, requiresGrad bool) *Var {
	return &Var{Value: t, requires: requiresGrad}
}

// Const creates a non-differentiable graph input.
func Const(t *tensor.Tensor) *Var { return Leaf(t, false) }

// RequiresGrad reports whether gradients flow into this node.
func (v *Var) RequiresGrad() bool { return v.requires }

func newNode(val *tensor.Tensor, deps []*Var, back func(v *Var)) *Var {
	req := false
	for _, d := range deps {
		if d.requires {
			req = true
			break
		}
	}
	n := &Var{Value: val, requires: req, deps: deps}
	if req {
		n.back = back
	}
	return n
}

// accum adds g into v.Grad, allocating on first use.
func (v *Var) accum(g *tensor.Tensor) {
	if !v.requires {
		return
	}
	if v.Grad == nil {
		v.Grad = tensor.New(v.Value.Shape...)
	}
	for i, x := range g.Data {
		v.Grad.Data[i] += x
	}
}

// Backward runs reverse-mode differentiation from a scalar output.
func Backward(out *Var) error {
	if out.Value.Len() != 1 {
		return fmt.Errorf("ad: backward requires a scalar output, got shape %v", out.Value.Shape)
	}
	// Topological order by DFS.
	var order []*Var
	seen := map[*Var]bool{}
	var visit func(v *Var)
	visit = func(v *Var) {
		if seen[v] || !v.requires {
			return
		}
		seen[v] = true
		for _, d := range v.deps {
			visit(d)
		}
		order = append(order, v)
	}
	visit(out)

	out.Grad = tensor.New(out.Value.Shape...)
	out.Grad.Fill(1)
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.back != nil && n.Grad != nil {
			n.back(n)
		}
	}
	return nil
}

// ZeroGrad clears the gradients of the given leaves.
func ZeroGrad(vars ...*Var) {
	for _, v := range vars {
		v.Grad = nil
	}
}

func sameShape(a, b *Var, op string) {
	if !tensor.SameShape(a.Value, b.Value) {
		panic(fmt.Sprintf("ad: %s shape mismatch %v vs %v", op, a.Value.Shape, b.Value.Shape))
	}
}

// Add returns a + b (same shape).
func Add(a, b *Var) *Var {
	sameShape(a, b, "add")
	out := a.Value.Clone()
	for i, x := range b.Value.Data {
		out.Data[i] += x
	}
	return newNode(out, []*Var{a, b}, func(v *Var) {
		a.accum(v.Grad)
		b.accum(v.Grad)
	})
}

// Sub returns a - b.
func Sub(a, b *Var) *Var {
	sameShape(a, b, "sub")
	out := a.Value.Clone()
	for i, x := range b.Value.Data {
		out.Data[i] -= x
	}
	return newNode(out, []*Var{a, b}, func(v *Var) {
		a.accum(v.Grad)
		if b.requires {
			neg := v.Grad.Clone()
			for i := range neg.Data {
				neg.Data[i] = -neg.Data[i]
			}
			b.accum(neg)
		}
	})
}

// Mul returns the elementwise product a ⊙ b.
func Mul(a, b *Var) *Var {
	sameShape(a, b, "mul")
	out := a.Value.Clone()
	for i, x := range b.Value.Data {
		out.Data[i] *= x
	}
	return newNode(out, []*Var{a, b}, func(v *Var) {
		if a.requires {
			g := v.Grad.Clone()
			for i := range g.Data {
				g.Data[i] *= b.Value.Data[i]
			}
			a.accum(g)
		}
		if b.requires {
			g := v.Grad.Clone()
			for i := range g.Data {
				g.Data[i] *= a.Value.Data[i]
			}
			b.accum(g)
		}
	})
}

// Scale returns a * k for a constant k.
func Scale(a *Var, k float64) *Var {
	out := a.Value.Clone()
	for i := range out.Data {
		out.Data[i] *= k
	}
	return newNode(out, []*Var{a}, func(v *Var) {
		g := v.Grad.Clone()
		for i := range g.Data {
			g.Data[i] *= k
		}
		a.accum(g)
	})
}

// AddConst returns a + k elementwise.
func AddConst(a *Var, k float64) *Var {
	out := a.Value.Clone()
	for i := range out.Data {
		out.Data[i] += k
	}
	return newNode(out, []*Var{a}, func(v *Var) { a.accum(v.Grad) })
}

// MatMul returns a @ b for 2-D vars.
func MatMul(a, b *Var) *Var {
	out := tensor.MatMul(a.Value, b.Value)
	return newNode(out, []*Var{a, b}, func(v *Var) {
		if a.requires {
			a.accum(tensor.MatMulABT(v.Grad, b.Value))
		}
		if b.requires {
			b.accum(tensor.MatMulATB(a.Value, v.Grad))
		}
	})
}

// AddRow broadcasts a 1×D row vector across an N×D matrix.
func AddRow(a, row *Var) *Var {
	if a.Value.Dims() != 2 || row.Value.Dims() != 2 || row.Value.Shape[0] != 1 ||
		row.Value.Shape[1] != a.Value.Shape[1] {
		panic(fmt.Sprintf("ad: addrow shape mismatch %v + %v", a.Value.Shape, row.Value.Shape))
	}
	n, d := a.Value.Shape[0], a.Value.Shape[1]
	out := a.Value.Clone()
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			out.Data[i*d+j] += row.Value.Data[j]
		}
	}
	return newNode(out, []*Var{a, row}, func(v *Var) {
		a.accum(v.Grad)
		if row.requires {
			g := tensor.New(1, d)
			for i := 0; i < n; i++ {
				for j := 0; j < d; j++ {
					g.Data[j] += v.Grad.Data[i*d+j]
				}
			}
			row.accum(g)
		}
	})
}

// ReLU applies max(0, x).
func ReLU(a *Var) *Var {
	out := a.Value.Apply(func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
	return newNode(out, []*Var{a}, func(v *Var) {
		g := v.Grad.Clone()
		for i, x := range a.Value.Data {
			if x <= 0 {
				g.Data[i] = 0
			}
		}
		a.accum(g)
	})
}

// SiLU applies x·sigmoid(x) (the smooth activation used by the message MLPs;
// smoothness matters because relaxation differentiates through the network).
func SiLU(a *Var) *Var {
	out := a.Value.Apply(func(x float64) float64 { return x * sigmoid(x) })
	return newNode(out, []*Var{a}, func(v *Var) {
		g := v.Grad.Clone()
		for i, x := range a.Value.Data {
			s := sigmoid(x)
			g.Data[i] *= s + x*s*(1-s)
		}
		a.accum(g)
	})
}

// Tanh applies tanh elementwise.
func Tanh(a *Var) *Var {
	out := a.Value.Apply(math.Tanh)
	return newNode(out, []*Var{a}, func(v *Var) {
		g := v.Grad.Clone()
		for i := range g.Data {
			t := out.Data[i]
			g.Data[i] *= 1 - t*t
		}
		a.accum(g)
	})
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Square returns x² elementwise.
func Square(a *Var) *Var {
	out := a.Value.Apply(func(x float64) float64 { return x * x })
	return newNode(out, []*Var{a}, func(v *Var) {
		g := v.Grad.Clone()
		for i, x := range a.Value.Data {
			g.Data[i] *= 2 * x
		}
		a.accum(g)
	})
}

// Sqrt returns √x elementwise, guarded at zero.
func Sqrt(a *Var) *Var {
	out := a.Value.Apply(func(x float64) float64 { return math.Sqrt(math.Max(x, 0)) })
	return newNode(out, []*Var{a}, func(v *Var) {
		g := v.Grad.Clone()
		for i := range g.Data {
			d := 2 * out.Data[i]
			if d < 1e-12 {
				d = 1e-12
			}
			g.Data[i] /= d
		}
		a.accum(g)
	})
}

// Exp returns e^x elementwise.
func Exp(a *Var) *Var {
	out := a.Value.Apply(math.Exp)
	return newNode(out, []*Var{a}, func(v *Var) {
		g := v.Grad.Clone()
		for i := range g.Data {
			g.Data[i] *= out.Data[i]
		}
		a.accum(g)
	})
}

// Log returns ln(x) elementwise; inputs must be positive.
func Log(a *Var) *Var {
	out := a.Value.Apply(math.Log)
	return newNode(out, []*Var{a}, func(v *Var) {
		g := v.Grad.Clone()
		for i, x := range a.Value.Data {
			g.Data[i] /= x
		}
		a.accum(g)
	})
}

// Sum reduces all elements to a 1×1 scalar.
func Sum(a *Var) *Var {
	s := 0.0
	for _, x := range a.Value.Data {
		s += x
	}
	out := tensor.FromSlice([]float64{s}, 1, 1)
	return newNode(out, []*Var{a}, func(v *Var) {
		g := tensor.New(a.Value.Shape...)
		g.Fill(v.Grad.Data[0])
		a.accum(g)
	})
}

// Mean reduces all elements to their average.
func Mean(a *Var) *Var {
	n := float64(a.Value.Len())
	return Scale(Sum(a), 1/n)
}

// Gather selects rows: out[i] = a[idx[i]] for a 2-D a.
func Gather(a *Var, idx []int) *Var {
	d := a.Value.Shape[1]
	out := tensor.New(len(idx), d)
	for i, r := range idx {
		copy(out.Data[i*d:(i+1)*d], a.Value.Data[r*d:(r+1)*d])
	}
	return newNode(out, []*Var{a}, func(v *Var) {
		g := tensor.New(a.Value.Shape...)
		for i, r := range idx {
			for j := 0; j < d; j++ {
				g.Data[r*d+j] += v.Grad.Data[i*d+j]
			}
		}
		a.accum(g)
	})
}

// ScatterAdd sums rows of a into numRows buckets: out[idx[i]] += a[i].
func ScatterAdd(a *Var, idx []int, numRows int) *Var {
	d := a.Value.Shape[1]
	out := tensor.New(numRows, d)
	for i, r := range idx {
		for j := 0; j < d; j++ {
			out.Data[r*d+j] += a.Value.Data[i*d+j]
		}
	}
	return newNode(out, []*Var{a}, func(v *Var) {
		g := tensor.New(a.Value.Shape...)
		for i, r := range idx {
			for j := 0; j < d; j++ {
				g.Data[i*d+j] = v.Grad.Data[r*d+j]
			}
		}
		a.accum(g)
	})
}

// ConcatCols concatenates 2-D vars along columns.
func ConcatCols(vs ...*Var) *Var {
	n := vs[0].Value.Shape[0]
	total := 0
	for _, v := range vs {
		if v.Value.Shape[0] != n {
			panic("ad: concat row mismatch")
		}
		total += v.Value.Shape[1]
	}
	out := tensor.New(n, total)
	off := 0
	for _, v := range vs {
		d := v.Value.Shape[1]
		for i := 0; i < n; i++ {
			copy(out.Data[i*total+off:i*total+off+d], v.Value.Data[i*d:(i+1)*d])
		}
		off += d
	}
	deps := append([]*Var(nil), vs...)
	return newNode(out, deps, func(v *Var) {
		off := 0
		for _, dep := range deps {
			d := dep.Value.Shape[1]
			if dep.requires {
				g := tensor.New(n, d)
				for i := 0; i < n; i++ {
					copy(g.Data[i*d:(i+1)*d], v.Grad.Data[i*total+off:i*total+off+d])
				}
				dep.accum(g)
			}
			off += d
		}
	})
}

// Cols slices columns [j0, j1) of a 2-D var.
func Cols(a *Var, j0, j1 int) *Var {
	n, d := a.Value.Shape[0], a.Value.Shape[1]
	w := j1 - j0
	out := tensor.New(n, w)
	for i := 0; i < n; i++ {
		copy(out.Data[i*w:(i+1)*w], a.Value.Data[i*d+j0:i*d+j1])
	}
	return newNode(out, []*Var{a}, func(v *Var) {
		g := tensor.New(n, d)
		for i := 0; i < n; i++ {
			copy(g.Data[i*d+j0:i*d+j1], v.Grad.Data[i*w:(i+1)*w])
		}
		a.accum(g)
	})
}

// RBF expands a column vector d (N×1) with radial basis functions:
// out[i,k] = exp(-γ·(d[i]-µ_k)²) — Eq. (3) of the paper.
func RBF(a *Var, mus []float64, gamma float64) *Var {
	n := a.Value.Shape[0]
	k := len(mus)
	out := tensor.New(n, k)
	for i := 0; i < n; i++ {
		di := a.Value.Data[i]
		for j, mu := range mus {
			diff := di - mu
			out.Data[i*k+j] = math.Exp(-gamma * diff * diff)
		}
	}
	return newNode(out, []*Var{a}, func(v *Var) {
		g := tensor.New(n, 1)
		for i := 0; i < n; i++ {
			di := a.Value.Data[i]
			s := 0.0
			for j, mu := range mus {
				diff := di - mu
				s += v.Grad.Data[i*k+j] * out.Data[i*k+j] * (-2 * gamma * diff)
			}
			g.Data[i] = s
		}
		a.accum(g)
	})
}

// MSE returns the mean squared error between pred and target (L2 loss of
// Eq. 6).
func MSE(pred, target *Var) *Var {
	return Mean(Square(Sub(pred, target)))
}
