// Package parallel provides the bounded worker pool used by every
// embarrassingly-parallel hot path of the reproduction: the pool-assisted
// relaxation restarts, benchmark-flow method evaluation, Monte Carlo
// sampling, minibatch gradient computation and dataset generation.
//
// The package is deliberately small: index-based fan-out over a fixed-size
// work list, deterministic result placement (slot i always holds item i's
// result regardless of scheduling), context cancellation, and first-error
// propagation. Callers that need per-item randomness derive a private RNG per
// index (see SeedFor) so results are bit-identical for any worker count.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count setting: 0 (or negative) selects
// GOMAXPROCS, anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on at most Workers(workers)
// goroutines. The first error cancels the remaining work (items not yet
// started are skipped) and is returned; in-flight items run to completion.
// A nil or already-cancelled ctx short-circuits before any item runs.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		// Serial fast path: no goroutines, exact FIFO order.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64 // next index to claim
		firstIdx atomic.Int64 // lowest index that errored
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	firstIdx.Store(int64(n))
	record := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || int64(i) < firstIdx.Load() {
			firstErr = err
			firstIdx.Store(int64(i))
		}
		mu.Unlock()
		cancel()
	}
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || cctx.Err() != nil {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Map runs fn(i) for every i in [0, n) on at most Workers(workers)
// goroutines and returns the results in index order. On error the partial
// results are discarded and the first error is returned.
func Map[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return fmt.Errorf("parallel: item %d: %w", i, err)
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SeedFor derives a decorrelated RNG seed for item i of a run seeded with
// base, using a splitmix64 finalizer. Adjacent math/rand sources seeded with
// base+i produce visibly correlated streams (base=7,i=1 and base=8,i=0 are
// the same source); mixing through splitmix64 makes every (base, i) pair an
// independent-looking stream while staying a pure function of its inputs.
func SeedFor(base int64, i int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
