package parallel

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if Workers(0) < 1 {
		t.Errorf("Workers(0) = %d", Workers(0))
	}
	if Workers(-3) < 1 {
		t.Errorf("Workers(-3) = %d", Workers(-3))
	}
	if Workers(7) != 7 {
		t.Errorf("Workers(7) = %d", Workers(7))
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 8, 100} {
		const n = 57
		hits := make([]int32, n)
		err := ForEach(context.Background(), w, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d run %d times", w, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(int) error {
		t.Fatal("must not run")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachFirstErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	err := ForEach(context.Background(), 4, 100, func(i int) error {
		if i == 13 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want %v", err, boom)
	}
}

func TestForEachErrorStopsRemainingWork(t *testing.T) {
	var started atomic.Int32
	_ = ForEach(context.Background(), 2, 1000, func(i int) error {
		started.Add(1)
		if i == 0 {
			return errors.New("stop")
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if got := started.Load(); got > 100 {
		t.Errorf("error did not cancel remaining work: %d/1000 items ran", got)
	}
}

func TestForEachContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := atomic.Int32{}
	err := ForEach(ctx, 4, 50, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestMapPreservesIndexOrder(t *testing.T) {
	for _, w := range []int{1, 3, 16} {
		out, err := Map(context.Background(), w, 40, func(i int) (string, error) {
			return fmt.Sprintf("v%d", i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != fmt.Sprintf("v%d", i) {
				t.Fatalf("workers=%d: out[%d] = %q", w, i, v)
			}
		}
	}
}

func TestMapErrorDiscardsResults(t *testing.T) {
	out, err := Map(context.Background(), 4, 10, func(i int) (int, error) {
		if i == 3 {
			return 0, errors.New("bad")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Errorf("Map with failing item: out=%v err=%v", out, err)
	}
}

func TestForEachMidRoundCancellation(t *testing.T) {
	// Cancel while workers are mid-flight: ForEach must return promptly with
	// the context error, skip unclaimed items, and leak no worker goroutines
	// (tracked by an in-flight counter since the container has no goleak).
	ctx, cancel := context.WithCancel(context.Background())
	var ran, inFlight atomic.Int32
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- ForEach(ctx, 4, 1000, func(i int) error {
			inFlight.Add(1)
			defer inFlight.Add(-1)
			ran.Add(1)
			if i < 4 {
				<-release // hold the first wave until cancellation lands
			}
			return nil
		})
	}()
	for ran.Load() < 4 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	var err error
	select {
	case err = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ForEach hung past cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got > 100 {
		t.Errorf("cancellation did not stop claiming: %d/1000 items ran", got)
	}
	// All workers must have drained: no item may still be executing.
	for i := 0; i < 100 && inFlight.Load() != 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if got := inFlight.Load(); got != 0 {
		t.Errorf("%d worker(s) still executing items after ForEach returned", got)
	}
}

func TestForEachLowestIndexErrorWinsWithMultipleFailures(t *testing.T) {
	// When several workers fail concurrently, the reported error must be the
	// failing item with the lowest index, for any worker count.
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, w := range []int{2, 4, 16} {
		var barrier sync.WaitGroup
		barrier.Add(2)
		err := ForEach(context.Background(), w, 64, func(i int) error {
			switch i {
			case 5:
				barrier.Done()
				barrier.Wait() // force both failures to be in flight together
				return errLow
			case 6:
				barrier.Done()
				barrier.Wait()
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Errorf("workers=%d: err = %v, want %v (lowest failing index)", w, err, errLow)
		}
	}
}

func TestForEachNoGoroutineGrowthAcrossRuns(t *testing.T) {
	// Counter-based leak check: repeated pools must not accumulate
	// goroutines. Allow slack for runtime background goroutines.
	before := runtime.NumGoroutine()
	for r := 0; r < 50; r++ {
		_ = ForEach(context.Background(), 8, 64, func(i int) error {
			if i == 32 {
				return errors.New("fail")
			}
			return nil
		})
	}
	for i := 0; i < 100 && runtime.NumGoroutine() > before+8; i++ {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+8 {
		t.Errorf("goroutines grew %d -> %d across 50 failing runs", before, after)
	}
}

func TestSeedForDecorrelatesAdjacentBases(t *testing.T) {
	// The shifted-stream hazard SeedFor exists to prevent: (base, i+1) and
	// (base+1, i) must not collide the way base+i arithmetic does.
	if SeedFor(7, 1) == SeedFor(8, 0) {
		t.Errorf("SeedFor(7,1) == SeedFor(8,0)")
	}
	seen := map[int64]bool{}
	for base := int64(0); base < 8; base++ {
		for i := 0; i < 64; i++ {
			s := SeedFor(base, i)
			if seen[s] {
				t.Fatalf("seed collision at base=%d i=%d", base, i)
			}
			seen[s] = true
		}
	}
	// Streams from consecutive indices must look independent.
	a := rand.New(rand.NewSource(SeedFor(1, 0))).Float64()
	b := rand.New(rand.NewSource(SeedFor(1, 1))).Float64()
	if a == b {
		t.Errorf("consecutive per-index streams identical")
	}
}
