// Package hetgraph constructs the heterogeneous routing graph of the paper's
// Section 4.1: G_H = ⟨V_AP, V_M, E_PP, E_MM, E_MP⟩ with pin-access-point
// nodes, module nodes, point-to-point edges (routing-resource competition and
// same-net connectivity), module-to-module edges (netlist connectivity), and
// module-to-point edges (bridging physical and logical information).
//
// Node features deliberately exclude raw coordinates — the paper's 3DGNN
// consumes geometry only through cost-aware distances attached to edges. Each
// edge therefore carries the (h, w, z) distance decomposition of Eq. (1):
// horizontal and vertical distances in µm, and a via-depth estimate for the
// Z axis (pins escape to upper routing layers; longer connections escape
// deeper, so z grows with planar separation).
package hetgraph

import (
	"fmt"
	"sort"

	"analogfold/internal/grid"
	"analogfold/internal/groute"
	"analogfold/internal/netlist"
	"analogfold/internal/tensor"
)

// Feature widths.
const (
	// APFeatDim: net type one-hot (6) + terminal one-hot (5) + device type
	// one-hot (4) + net fanout (1) + global-route congestion (1).
	APFeatDim = 17
	// MFeatDim: device type one-hot (4) + log-scaled W, L, ID, Vov, cell
	// aspect (5).
	MFeatDim = 9
)

// EdgeSet is one relation's edge list with distance decompositions.
type EdgeSet struct {
	Src, Dst []int
	H, W, Z  []float64 // distance components (µm; z in estimated via hops)
}

func (e *EdgeSet) add(src, dst int, h, w, z float64) {
	e.Src = append(e.Src, src)
	e.Dst = append(e.Dst, dst)
	e.H = append(e.H, h)
	e.W = append(e.W, w)
	e.Z = append(e.Z, z)
}

// Len returns the edge count.
func (e *EdgeSet) Len() int { return len(e.Src) }

// Graph is the assembled heterogeneous graph for one placement.
type Graph struct {
	Circuit *netlist.Circuit

	APFeat *tensor.Tensor // [numAP × APFeatDim]
	MFeat  *tensor.Tensor // [numM × MFeatDim]
	APNet  []int          // owning net of each AP node
	APDev  []int          // owning device of each AP node

	PP EdgeSet // AP → AP
	MM EdgeSet // M → M
	MP EdgeSet // M → AP and AP → M are both stored here, Src ∈ M, Dst ∈ AP
}

// Config controls graph construction.
type Config struct {
	// KNearest bounds the cross-net competition edges per AP.
	KNearest int
	// RadiusUm bounds the distance of competition edges (µm).
	RadiusUm float64
}

func (c Config) withDefaults() Config {
	if c.KNearest == 0 {
		c.KNearest = 6
	}
	if c.RadiusUm == 0 {
		c.RadiusUm = 8
	}
	return c
}

// escapeZ estimates the via depth of a connection from its planar length:
// neighbouring pins connect on low metal, longer connections escape to upper
// layers. This gives the z-axis guidance C[2] a real geometric meaning in
// d_cost even though all pins physically sit on M1.
func escapeZ(hUm, wUm float64) float64 {
	planar := hUm + wUm
	switch {
	case planar < 0.5:
		return 1
	case planar < 3:
		return 2
	default:
		return 3
	}
}

// Build assembles the graph from a routing grid (which already knows the
// placement and access points).
func Build(g *grid.Grid, cfg Config) (*Graph, error) {
	cfg = cfg.withDefaults()
	c := g.Place.Circuit
	if len(g.APs) == 0 {
		return nil, fmt.Errorf("hetgraph: grid has no access points")
	}

	// Congestion estimate from a coarse global-routing pass (Section 4.1's
	// routing cost map); failures degrade to a zero feature rather than
	// aborting graph construction.
	var cong *groute.Map
	if cm, err := groute.Estimate(g, groute.Config{}); err == nil {
		cong = cm
	}

	gr := &Graph{Circuit: c}
	numAP := len(g.APs)
	numM := len(c.Devices)
	gr.APFeat = tensor.New(numAP, APFeatDim)
	gr.MFeat = tensor.New(numM, MFeatDim)
	gr.APNet = make([]int, numAP)
	gr.APDev = make([]int, numAP)

	// AP node features.
	for i, ap := range g.APs {
		gr.APNet[i] = ap.Net
		gr.APDev[i] = ap.Device
		f := gr.APFeat.Data[i*APFeatDim : (i+1)*APFeatDim]
		nt := c.Nets[ap.Net].Type
		f[int(nt)] = 1 // 0..5
		switch ap.Terminal {
		case "G":
			f[6] = 1
		case "D":
			f[7] = 1
		case "S":
			f[8] = 1
		case "P":
			f[9] = 1
		case "N":
			f[10] = 1
		}
		dt := c.Devices[ap.Device].Type
		f[11+int(dt)] = 1 // 11..14
		f[15] = float64(len(c.Nets[ap.Net].Pins)) / 8.0
		if cong != nil {
			f[16] = cong.CongestionAt(ap.Cell.X, ap.Cell.Y)
		}
	}

	// Module node features.
	for i, d := range c.Devices {
		f := gr.MFeat.Data[i*MFeatDim : (i+1)*MFeatDim]
		f[int(d.Type)] = 1
		f[4] = float64(d.W) / 20000.0
		f[5] = float64(d.L) / 200.0
		f[6] = d.ID * 1e4
		f[7] = d.Vov
		f[8] = float64(d.CellW) / float64(d.CellH) / 3.0
	}

	um := 1.0 / 1000.0 // nm → µm
	apPosUm := func(i int) (x, y float64) {
		return float64(g.APs[i].Pos.X) * um, float64(g.APs[i].Pos.Y) * um
	}
	mPosUm := func(i int) (x, y float64) {
		ctr := g.Place.DeviceRect(i).Center()
		return float64(ctr.X) * um, float64(ctr.Y) * um
	}

	// E_PP: same-net chains + cross-net k-nearest competition edges.
	gr.buildPP(g, cfg, apPosUm)

	// E_MM: modules sharing a net.
	seenMM := map[[2]int]bool{}
	for _, n := range c.Nets {
		for a := 0; a < len(n.Pins); a++ {
			for b := a + 1; b < len(n.Pins); b++ {
				da, db := n.Pins[a].Device, n.Pins[b].Device
				if da == db {
					continue
				}
				key := [2]int{min(da, db), max(da, db)}
				if seenMM[key] {
					continue
				}
				seenMM[key] = true
				ax, ay := mPosUm(da)
				bx, by := mPosUm(db)
				h, w := abs(ax-bx), abs(ay-by)
				z := escapeZ(h, w)
				gr.MM.add(da, db, h, w, z)
				gr.MM.add(db, da, h, w, z)
			}
		}
	}

	// E_MP: every module to each of its own access points.
	for i, ap := range g.APs {
		mx, my := mPosUm(ap.Device)
		x, y := apPosUm(i)
		h, w := abs(mx-x), abs(my-y)
		gr.MP.add(ap.Device, i, h, w, 1)
	}

	return gr, nil
}

// buildPP fills the point-to-point edges.
func (gr *Graph) buildPP(g *grid.Grid, cfg Config, pos func(int) (float64, float64)) {
	numAP := len(g.APs)
	type cand struct {
		j    int
		dist float64
	}
	// Same-net edges: connect each AP to the nearest AP of every *other* pin
	// of its net (the wires the router must create).
	for ni := range g.NetAPs {
		ids := g.NetAPs[ni]
		byPin := map[string][]int{}
		var pins []string
		for _, id := range ids {
			key := fmt.Sprintf("%d.%s", g.APs[id].Device, g.APs[id].Terminal)
			if _, ok := byPin[key]; !ok {
				pins = append(pins, key)
			}
			byPin[key] = append(byPin[key], id)
		}
		for a := 0; a < len(pins); a++ {
			for b := a + 1; b < len(pins); b++ {
				// Closest AP pair between the two pins.
				bi, bj, bd := -1, -1, 0.0
				for _, i := range byPin[pins[a]] {
					xi, yi := pos(i)
					for _, j := range byPin[pins[b]] {
						xj, yj := pos(j)
						d := abs(xi-xj) + abs(yi-yj)
						if bi < 0 || d < bd {
							bi, bj, bd = i, j, d
						}
					}
				}
				xi, yi := pos(bi)
				xj, yj := pos(bj)
				h, w := abs(xi-xj), abs(yi-yj)
				z := escapeZ(h, w)
				gr.PP.add(bi, bj, h, w, z)
				gr.PP.add(bj, bi, h, w, z)
			}
		}
	}

	// Cross-net competition edges: k nearest foreign APs within the radius.
	for i := 0; i < numAP; i++ {
		xi, yi := pos(i)
		var cands []cand
		for j := 0; j < numAP; j++ {
			if j == i || gr.APNet[j] == gr.APNet[i] {
				continue
			}
			xj, yj := pos(j)
			d := abs(xi-xj) + abs(yi-yj)
			if d <= cfg.RadiusUm {
				cands = append(cands, cand{j, d})
			}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
		if len(cands) > cfg.KNearest {
			cands = cands[:cfg.KNearest]
		}
		for _, cd := range cands {
			xj, yj := pos(cd.j)
			h, w := abs(xi-xj), abs(yi-yj)
			gr.PP.add(i, cd.j, h, w, escapeZ(h, w))
		}
	}
}

// NumAP returns the pin-access-point node count.
func (gr *Graph) NumAP() int { return gr.APFeat.Shape[0] }

// NumM returns the module node count.
func (gr *Graph) NumM() int { return gr.MFeat.Shape[0] }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
