package hetgraph

import (
	"testing"

	"analogfold/internal/grid"
	"analogfold/internal/netlist"
	"analogfold/internal/place"
	"analogfold/internal/tech"
)

func buildG(t testing.TB, c *netlist.Circuit, seed int64) *Graph {
	t.Helper()
	p, err := place.Place(c, place.Config{Profile: place.ProfileA, Seed: seed, Iterations: 2000})
	if err != nil {
		t.Fatalf("place: %v", err)
	}
	g, err := grid.Build(p, tech.Sim40())
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	hg, err := Build(g, Config{})
	if err != nil {
		t.Fatalf("hetgraph: %v", err)
	}
	return hg
}

func TestBuildAllBenchmarks(t *testing.T) {
	for _, c := range netlist.Benchmarks() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			hg := buildG(t, c, 1)
			if hg.NumAP() == 0 || hg.NumM() != len(c.Devices) {
				t.Fatalf("node counts AP=%d M=%d", hg.NumAP(), hg.NumM())
			}
			if hg.PP.Len() == 0 || hg.MM.Len() == 0 || hg.MP.Len() == 0 {
				t.Errorf("all three relations must be populated: PP=%d MM=%d MP=%d",
					hg.PP.Len(), hg.MM.Len(), hg.MP.Len())
			}
		})
	}
}

func TestEdgeIndicesInRange(t *testing.T) {
	hg := buildG(t, netlist.OTA1(), 2)
	for i := range hg.PP.Src {
		if hg.PP.Src[i] < 0 || hg.PP.Src[i] >= hg.NumAP() || hg.PP.Dst[i] < 0 || hg.PP.Dst[i] >= hg.NumAP() {
			t.Fatalf("PP edge %d out of range", i)
		}
	}
	for i := range hg.MM.Src {
		if hg.MM.Src[i] >= hg.NumM() || hg.MM.Dst[i] >= hg.NumM() {
			t.Fatalf("MM edge %d out of range", i)
		}
	}
	for i := range hg.MP.Src {
		if hg.MP.Src[i] >= hg.NumM() || hg.MP.Dst[i] >= hg.NumAP() {
			t.Fatalf("MP edge %d out of range", i)
		}
	}
}

func TestMPEdgesConnectOwnDevice(t *testing.T) {
	hg := buildG(t, netlist.OTA1(), 3)
	for i := range hg.MP.Src {
		if hg.APDev[hg.MP.Dst[i]] != hg.MP.Src[i] {
			t.Errorf("MP edge %d links AP of device %d to module %d",
				i, hg.APDev[hg.MP.Dst[i]], hg.MP.Src[i])
		}
	}
	// Every AP has exactly one MP edge.
	if hg.MP.Len() != hg.NumAP() {
		t.Errorf("MP edges %d != APs %d", hg.MP.Len(), hg.NumAP())
	}
}

func TestMMReflectsNetlist(t *testing.T) {
	c := netlist.OTA1()
	hg := buildG(t, c, 4)
	// MN1 and MP1 share net N1, so an MM edge must exist between them.
	a := c.DeviceByName("MN1")
	b := c.DeviceByName("MP1")
	found := false
	for i := range hg.MM.Src {
		if (hg.MM.Src[i] == a && hg.MM.Dst[i] == b) || (hg.MM.Src[i] == b && hg.MM.Dst[i] == a) {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no MM edge between MN1 and MP1 which share a net")
	}
}

func TestDistancesNonNegative(t *testing.T) {
	hg := buildG(t, netlist.OTA3(), 5)
	for _, es := range []*EdgeSet{&hg.PP, &hg.MM, &hg.MP} {
		for i := range es.H {
			if es.H[i] < 0 || es.W[i] < 0 || es.Z[i] < 0 {
				t.Fatalf("negative distance component at edge %d", i)
			}
			if es.Z[i] == 0 {
				t.Fatalf("z component must be positive (escape depth), edge %d", i)
			}
		}
	}
}

func TestFeatureShapes(t *testing.T) {
	hg := buildG(t, netlist.OTA2(), 6)
	if hg.APFeat.Shape[1] != APFeatDim || hg.MFeat.Shape[1] != MFeatDim {
		t.Fatalf("feature dims %v %v", hg.APFeat.Shape, hg.MFeat.Shape)
	}
	// One-hot sanity: every AP row has exactly one net-type bit and one
	// device-type bit.
	for i := 0; i < hg.NumAP(); i++ {
		row := hg.APFeat.Data[i*APFeatDim : (i+1)*APFeatDim]
		nt := 0.0
		for _, v := range row[0:6] {
			nt += v
		}
		dt := 0.0
		for _, v := range row[11:15] {
			dt += v
		}
		if nt != 1 || dt != 1 {
			t.Fatalf("AP %d one-hot sums: net=%g dev=%g", i, nt, dt)
		}
	}
}

func TestCrossNetCompetitionEdges(t *testing.T) {
	hg := buildG(t, netlist.OTA1(), 7)
	cross := 0
	for i := range hg.PP.Src {
		if hg.APNet[hg.PP.Src[i]] != hg.APNet[hg.PP.Dst[i]] {
			cross++
		}
	}
	if cross == 0 {
		t.Errorf("no cross-net competition edges in PP")
	}
}

func TestKNearestBound(t *testing.T) {
	c := netlist.OTA1()
	p, err := place.Place(c, place.Config{Profile: place.ProfileA, Seed: 8, Iterations: 1500})
	if err != nil {
		t.Fatal(err)
	}
	g, err := grid.Build(p, tech.Sim40())
	if err != nil {
		t.Fatal(err)
	}
	hg, err := Build(g, Config{KNearest: 2, RadiusUm: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Count outgoing cross-net edges per AP.
	out := map[int]int{}
	for i := range hg.PP.Src {
		if hg.APNet[hg.PP.Src[i]] != hg.APNet[hg.PP.Dst[i]] {
			out[hg.PP.Src[i]]++
		}
	}
	for ap, n := range out {
		if n > 2 {
			t.Fatalf("AP %d has %d cross-net edges, bound is 2", ap, n)
		}
	}
}
