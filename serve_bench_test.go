package analogfold_bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"analogfold/internal/atomicfile"
	"analogfold/internal/gnn3d"
	"analogfold/internal/guidance"
	"analogfold/internal/hetgraph"
	"analogfold/internal/netlist"
	"analogfold/internal/obs"
	"analogfold/internal/serve"
	"analogfold/internal/tensor"

	mrand "math/rand"
)

// serveMixRow is one traffic mix's measurement in BENCH_serve.json.
type serveMixRow struct {
	Requests   int     `json:"requests"`
	Unique     int     `json:"unique"`
	CachedMs   float64 `json:"cached_ms"`
	UncachedMs float64 `json:"uncached_ms,omitempty"`
	Speedup    float64 `json:"speedup,omitempty"`
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	Collapses  int64   `json:"collapses"`
	Waves      int64   `json:"waves,omitempty"`
	Candidates int64   `json:"candidates,omitempty"`
	ScoreWaves int64   `json:"score_waves,omitempty"`
}

// serveReport is the machine-readable output of BenchmarkServeThroughput —
// the perf-regression record for batch-first serving, following the
// BENCH_route.json shape (host fields up front so numbers recorded on a
// degenerate machine are recognizable as such).
type serveReport struct {
	GoMaxProcs     int  `json:"gomaxprocs"`
	NumCPU         int  `json:"numcpu"`
	DegenerateHost bool `json:"degenerate_host"`

	// DuplicateHeavy is the repeat-dominated mix (≥80% repeated keys): the
	// result cache plus singleflight should win ≥5× wall time over the
	// uncached daemon (gated off degenerate hosts; the misses==unique and
	// collapse pins are host-independent).
	DuplicateHeavy serveMixRow `json:"duplicate_heavy"`

	// AllDistinct is the no-repeat mix exercising micro-batch waves: every
	// scored wave costs exactly one PredictBatch (waves == score_waves,
	// CI-gated), and candidates counts each member's N_derive sets.
	AllDistinct serveMixRow `json:"all_distinct"`

	// Wave-scoring cost model: K deferred members scored through one stacked
	// PredictBatch versus K request-scoped calls. The allocation-count
	// reduction is host-independent (CI-gated ≥2×).
	WaveMembers        int     `json:"wave_members"`
	BatchedScoreAllocs uint64  `json:"batched_score_allocs"`
	SequentialAllocs   uint64  `json:"sequential_score_allocs"`
	AllocReduction     float64 `json:"alloc_reduction"`
	BatchedScoreMs     float64 `json:"batched_score_ms"`
	SequentialScoreMs  float64 `json:"sequential_score_ms"`
}

// serveBenchServer builds a warmed guidance daemon for one benchmark arm.
func serveBenchServer(b *testing.B, m *gnn3d.Model, cfg serve.Config) *httptest.Server {
	b.Helper()
	if cfg.Opts.Samples == 0 {
		o := quickOpts()
		o.Workers = 2
		cfg.Opts = o
	}
	if cfg.QueueCapacity == 0 {
		cfg.QueueCapacity = 32
	}
	if cfg.AdmissionTimeout == 0 {
		cfg.AdmissionTimeout = time.Minute
	}
	s := serve.New(m, cfg)
	if err := s.Warm([]string{"OTA1-A"}); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	return ts
}

// fireGuidance posts n concurrent /v1/guidance requests (seed chosen per
// index) and returns the wall time of the whole volley.
func fireGuidance(b *testing.B, url string, n int, seedFor func(int) int64) time.Duration {
	b.Helper()
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"bench":"OTA1-A","seed":%d}`, seedFor(i))
			resp, err := http.Post(url+"/v1/guidance", "application/json", strings.NewReader(body))
			if err != nil {
				b.Errorf("request %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("request %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	return time.Since(t0)
}

func scrapeMetrics(b *testing.B, url string) serve.MetricsSnapshot {
	b.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	var m serve.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkServeThroughput measures batch-first serving — the duplicate-heavy
// mix against the content-addressed cache with singleflight, the all-distinct
// mix through micro-batch scoring waves, and the wave-scoring allocation
// model — and writes BENCH_serve.json next to BENCH_model.json. Rerun with
// `make bench-serve` and diff the file. Structural pins (cache misses ==
// unique keys, one PredictBatch per wave, batched-vs-sequential allocation
// reduction) gate everywhere; wall-clock gates apply only off degenerate
// hosts.
func BenchmarkServeThroughput(b *testing.B) {
	m := gnn3d.New(gnn3d.Config{Seed: 1, Hidden: 16, Layers: 2, RBFBins: 8})
	rep := serveReport{
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		DegenerateHost: runtime.NumCPU() < 2,
	}

	// --- Duplicate-heavy mix: 32 requests over 4 unique seeds (87.5% repeats).
	const dupN, dupUnique = 32, 4
	dupSeed := func(i int) int64 { return int64(1 + i%dupUnique) }
	cached := serveBenchServer(b, m, serve.Config{CacheEntries: 256})
	cachedWall := fireGuidance(b, cached.URL, dupN, dupSeed)
	cm := scrapeMetrics(b, cached.URL)
	uncached := serveBenchServer(b, m, serve.Config{})
	uncachedWall := fireGuidance(b, uncached.URL, dupN, dupSeed)
	rep.DuplicateHeavy = serveMixRow{
		Requests: dupN, Unique: dupUnique,
		CachedMs:   cachedWall.Seconds() * 1e3,
		UncachedMs: uncachedWall.Seconds() * 1e3,
		Speedup:    uncachedWall.Seconds() / cachedWall.Seconds(),
		Hits:       cm.Cache.Hits, Misses: cm.Cache.Misses, Collapses: cm.Cache.Collapses,
	}
	b.Logf("duplicate-heavy %d req / %d unique: cached %8.1fms  uncached %8.1fms  speedup %.1fx  (%d miss, %d hit, %d collapsed)",
		dupN, dupUnique, rep.DuplicateHeavy.CachedMs, rep.DuplicateHeavy.UncachedMs,
		rep.DuplicateHeavy.Speedup, cm.Cache.Misses, cm.Cache.Hits, cm.Cache.Collapses)
	if cm.Cache.Misses != dupUnique {
		b.Errorf("cache misses = %d, want exactly the %d unique keys — duplicates executed the flow",
			cm.Cache.Misses, dupUnique)
	}
	if cm.Cache.Hits+cm.Cache.Collapses != dupN-dupUnique {
		b.Errorf("hits+collapses = %d, want %d", cm.Cache.Hits+cm.Cache.Collapses, dupN-dupUnique)
	}
	if !rep.DegenerateHost {
		if rep.DuplicateHeavy.Speedup < 5 {
			b.Errorf("duplicate-heavy speedup %.1fx < 5x", rep.DuplicateHeavy.Speedup)
		}
		if cm.Cache.Collapses < 1 {
			b.Errorf("no singleflight collapses despite %d concurrent duplicates", dupN-dupUnique)
		}
	}

	// --- All-distinct mix: micro-batch waves, one PredictBatch per wave.
	const distinctN = 8
	reg := obs.NewRegistry()
	tel := obs.New(obs.Options{Seed: 1, Registry: reg})
	distinct := serveBenchServer(b, m, serve.Config{
		CacheEntries: 256, BatchWindow: 50 * time.Millisecond, BatchMax: 4,
		Telemetry: tel,
	})
	distinctWall := fireGuidance(b, distinct.URL, distinctN, func(i int) int64 { return int64(100 + i) })
	dm := scrapeMetrics(b, distinct.URL)
	scoreWaves := reg.Counter("analogfold_relax_score_waves_total").Value()
	rep.AllDistinct = serveMixRow{
		Requests: distinctN, Unique: distinctN,
		CachedMs: distinctWall.Seconds() * 1e3,
		Misses:   dm.Cache.Misses,
		Waves:    dm.Batch.Waves, Candidates: dm.Batch.Candidates, ScoreWaves: scoreWaves,
	}
	b.Logf("all-distinct %d req: %8.1fms  %d waves  %d candidates  %d PredictBatch calls",
		distinctN, rep.AllDistinct.CachedMs, dm.Batch.Waves, dm.Batch.Candidates, scoreWaves)
	if dm.Batch.Waves < 1 {
		b.Errorf("no scoring waves formed for %d concurrent distinct requests", distinctN)
	}
	if scoreWaves != dm.Batch.Waves {
		b.Errorf("PredictBatch calls (%d) != waves (%d): a wave cost more than one model pass",
			scoreWaves, dm.Batch.Waves)
	}
	nd := quickOpts().NDerive
	if want := int64(distinctN * nd); dm.Batch.Candidates != want {
		b.Errorf("batched candidates = %d, want %d (%d members x %d derives)",
			dm.Batch.Candidates, want, distinctN, nd)
	}

	// --- Wave-scoring cost model: one stacked PredictBatch for K members
	// versus K request-scoped calls. Allocation counts are host-independent.
	g := builtGrid(b, netlist.OTA1())
	hg, err := hetgraph.Build(g, hetgraph.Config{})
	if err != nil {
		b.Fatal(err)
	}
	const members, perMember = 4, 4
	rep.WaveMembers = members
	rng := mrand.New(mrand.NewSource(7))
	nets := len(g.Place.Circuit.Nets)
	stacked := make([]*tensor.Tensor, 0, members*perMember)
	for i := 0; i < members*perMember; i++ {
		gd := guidance.Sample(nets, rng, 2)
		stacked = append(stacked, tensor.FromSlice(gd.Flat(), nets, 3))
	}
	measure := func(reps int, fn func()) (time.Duration, uint64) {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			fn()
		}
		wall := time.Since(t0)
		runtime.ReadMemStats(&after)
		return wall / time.Duration(reps), (after.Mallocs - before.Mallocs) / uint64(reps)
	}
	if _, err := m.PredictBatch(hg, stacked); err != nil { // warm both arms
		b.Fatal(err)
	}
	const reps = 20
	bw, ba := measure(reps, func() {
		if _, err := m.PredictBatch(hg, stacked); err != nil {
			b.Fatal(err)
		}
	})
	sw, sa := measure(reps, func() {
		for k := 0; k < members; k++ {
			if _, err := m.PredictBatch(hg, stacked[k*perMember:(k+1)*perMember]); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.BatchedScoreAllocs, rep.SequentialAllocs = ba, sa
	rep.AllocReduction = float64(sa) / float64(ba)
	rep.BatchedScoreMs = bw.Seconds() * 1e3
	rep.SequentialScoreMs = sw.Seconds() * 1e3
	b.Logf("wave scoring %d members x %d derives: batched %6.2fms %6d allocs  sequential %6.2fms %6d allocs  (%.1fx fewer allocs)",
		members, perMember, rep.BatchedScoreMs, ba, rep.SequentialScoreMs, sa, rep.AllocReduction)
	b.ReportMetric(rep.DuplicateHeavy.Speedup, "dup-speedup")
	b.ReportMetric(rep.AllocReduction, "alloc-reduction")
	if rep.AllocReduction < 2 {
		b.Errorf("wave scoring allocates only %.1fx less than sequential, want >= 2x", rep.AllocReduction)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := atomicfile.WriteFile("BENCH_serve.json", append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Log("wrote BENCH_serve.json")

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fireGuidance(b, cached.URL, dupUnique, dupSeed)
	}
}
