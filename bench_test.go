// Package analogfold_bench contains the benchmark harness that regenerates
// every table and figure of the paper (see DESIGN.md §4 for the experiment
// index). Each benchmark prints the same rows/series the paper reports;
// absolute numbers come from the simulated substrate, the shapes are the
// reproduction target.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package analogfold_bench

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"analogfold/internal/ad"
	"analogfold/internal/atomicfile"
	"analogfold/internal/circuit"
	"analogfold/internal/core"
	"analogfold/internal/dataset"
	"analogfold/internal/extract"
	"analogfold/internal/gnn3d"
	"analogfold/internal/grid"
	"analogfold/internal/guidance"
	"analogfold/internal/hetgraph"
	"analogfold/internal/netlist"
	"analogfold/internal/place"
	"analogfold/internal/relax"
	"analogfold/internal/route"
	"analogfold/internal/tech"
	"analogfold/internal/tensor"
)

// quickOpts are reduced-scale learning settings so the full harness runs in
// minutes; use cmd/analogfold table2 for full-scale reproduction.
func quickOpts() core.Options {
	return core.Options{
		Samples: 16, TrainEpochs: 8, RelaxRestarts: 4, NDerive: 2,
		PlaceIters: 1500, VAECorpus: 2, VAEEpochs: 10, Seed: 1,
	}
}

func builtGrid(b *testing.B, c *netlist.Circuit) *grid.Grid {
	b.Helper()
	p, err := place.Place(c, place.Config{Profile: place.ProfileA, Seed: 1, Iterations: 1500})
	if err != nil {
		b.Fatal(err)
	}
	g, err := grid.Build(p, tech.Sim40())
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkTable1Stats regenerates Table 1 (benchmark circuit statistics).
func BenchmarkTable1Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, c := range netlist.Benchmarks() {
			s := c.Stats()
			if i == 0 {
				b.Logf("Table1 %s: PMOS=%d NMOS=%d Cap=%d Res=%d Total=%d",
					c.Name, s.NumPMOS, s.NumNMOS, s.NumCap, s.NumRes, s.Total)
			}
		}
	}
}

// benchTable2Row runs the three-method comparison for one benchmark at quick
// scale — one iteration regenerates one Table-2 block.
func benchTable2Row(b *testing.B, c func() *netlist.Circuit, prof place.Profile) {
	for i := 0; i < b.N; i++ {
		row, err := core.RunBenchmark(context.Background(), c(), prof, quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", core.FormatRow(row))
		}
	}
}

// BenchmarkTable2_OTA1A .. _OTA4B regenerate the ten Table-2 blocks.
func BenchmarkTable2_OTA1A(b *testing.B) { benchTable2Row(b, netlist.OTA1, place.ProfileA) }

// BenchmarkTable2_OTA1B covers OTA1 under profile B.
func BenchmarkTable2_OTA1B(b *testing.B) { benchTable2Row(b, netlist.OTA1, place.ProfileB) }

// BenchmarkTable2_OTA1C covers OTA1 under profile C.
func BenchmarkTable2_OTA1C(b *testing.B) { benchTable2Row(b, netlist.OTA1, place.ProfileC) }

// BenchmarkTable2_OTA2A covers OTA2 under profile A.
func BenchmarkTable2_OTA2A(b *testing.B) { benchTable2Row(b, netlist.OTA2, place.ProfileA) }

// BenchmarkTable2_OTA2B covers OTA2 under profile B.
func BenchmarkTable2_OTA2B(b *testing.B) { benchTable2Row(b, netlist.OTA2, place.ProfileB) }

// BenchmarkTable2_OTA2C covers OTA2 under profile C.
func BenchmarkTable2_OTA2C(b *testing.B) { benchTable2Row(b, netlist.OTA2, place.ProfileC) }

// BenchmarkTable2_OTA3A covers OTA3 under profile A.
func BenchmarkTable2_OTA3A(b *testing.B) { benchTable2Row(b, netlist.OTA3, place.ProfileA) }

// BenchmarkTable2_OTA3B covers OTA3 under profile B.
func BenchmarkTable2_OTA3B(b *testing.B) { benchTable2Row(b, netlist.OTA3, place.ProfileB) }

// BenchmarkTable2_OTA4A covers OTA4 under profile A (the paper's corner case).
func BenchmarkTable2_OTA4A(b *testing.B) { benchTable2Row(b, netlist.OTA4, place.ProfileA) }

// BenchmarkTable2_OTA4B covers OTA4 under profile B.
func BenchmarkTable2_OTA4B(b *testing.B) { benchTable2Row(b, netlist.OTA4, place.ProfileB) }

// BenchmarkFig5Breakdown regenerates the Figure-5 runtime breakdown on OTA1.
func BenchmarkFig5Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := core.NewFlow(netlist.OTA1(), place.ProfileA, quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		out, err := f.RunAnalogFold(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", core.FormatBreakdown(core.BreakdownOf(out.Times)))
		}
	}
}

// BenchmarkFig1Guidance regenerates the Figure-1 non-uniform guidance data.
func BenchmarkFig1Guidance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := core.NewFlow(netlist.OTA1(), place.ProfileA, quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		gd, err := f.DeriveGuidance(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if err := gd.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Render regenerates the Figure-6 routed-layout comparison.
func BenchmarkFig6Render(b *testing.B) {
	f, err := core.NewFlow(netlist.OTA1(), place.ProfileA, quickOpts())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := f.RunGeniusRouted(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// --- Component benchmarks (throughput of each substrate) ---

// BenchmarkPlaceOTA1 measures the annealing placer.
func BenchmarkPlaceOTA1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := place.Place(netlist.OTA1(), place.Config{Profile: place.ProfileA, Seed: 1, Iterations: 2000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteOTA1 measures one full detailed-routing pass.
func BenchmarkRouteOTA1(b *testing.B) {
	g := builtGrid(b, netlist.OTA1())
	gd := guidance.Uniform(len(g.Place.Circuit.Nets))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := route.Route(g, gd, route.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteOTA3 measures routing the larger telescopic benchmark.
func BenchmarkRouteOTA3(b *testing.B) {
	g := builtGrid(b, netlist.OTA3())
	gd := guidance.Uniform(len(g.Place.Circuit.Nets))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := route.Route(g, gd, route.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtract measures parasitic extraction.
func BenchmarkExtract(b *testing.B) {
	g := builtGrid(b, netlist.OTA1())
	res, err := route.Route(g, guidance.Uniform(len(g.Place.Circuit.Nets)), route.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		extract.Extract(g, res)
	}
}

// BenchmarkSimulate measures one five-metric MNA evaluation.
func BenchmarkSimulate(b *testing.B) {
	g := builtGrid(b, netlist.OTA1())
	res, err := route.Route(g, guidance.Uniform(len(g.Place.Circuit.Nets)), route.Config{})
	if err != nil {
		b.Fatal(err)
	}
	par := extract.Extract(g, res)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := circuit.Evaluate(g.Place.Circuit, par); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGNNForward measures one 3DGNN prediction.
func BenchmarkGNNForward(b *testing.B) {
	g := builtGrid(b, netlist.OTA1())
	hg, err := hetgraph.Build(g, hetgraph.Config{})
	if err != nil {
		b.Fatal(err)
	}
	m := gnn3d.New(gnn3d.Config{Seed: 1})
	cu := guidance.Uniform(len(g.Place.Circuit.Nets))
	ct := tensor.FromSlice(cu.Flat(), len(cu.PerNet), 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(hg, ct); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatasetSample measures one label generation (route + extract +
// simulate), the unit of database construction.
func BenchmarkDatasetSample(b *testing.B) {
	g := builtGrid(b, netlist.OTA1())
	gd := guidance.Uniform(len(g.Place.Circuit.Nets))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.Label(context.Background(), g, gd, route.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// parallelPhase is one row of the BENCH_parallel.json report.
type parallelPhase struct {
	Phase      string  `json:"phase"`
	SerialMs   float64 `json:"serial_ms"`
	ParallelMs float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
}

// parallelReport is the machine-readable output of BenchmarkParallelSpeedup.
// DegenerateHost flags reports recorded on a single-CPU machine, where every
// speedup necessarily reads ~1.0× and asserting on it would be noise.
type parallelReport struct {
	GoMaxProcs     int             `json:"gomaxprocs"`
	NumCPU         int             `json:"numcpu"`
	Workers        int             `json:"workers"`
	DegenerateHost bool            `json:"degenerate_host"`
	Phases         []parallelPhase `json:"phases"`
}

// BenchmarkParallelSpeedup measures serial (Workers=1) versus parallel
// (Workers=GOMAXPROCS) wall time of the four parallelized phases —
// relaxation, Monte Carlo, dataset generation, and minibatch training — and
// writes BENCH_parallel.json next to the benchmark. The speedup metric is
// the geometric mean across phases; on a single-core host it reports ~1×,
// and the ≥2× acceptance target applies at GOMAXPROCS ≥ 4. Results are
// bit-identical across worker counts (see the *WorkerCountInvariant tests),
// so only wall time changes.
func BenchmarkParallelSpeedup(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	g := builtGrid(b, netlist.OTA1())
	hg, err := hetgraph.Build(g, hetgraph.Config{})
	if err != nil {
		b.Fatal(err)
	}
	m := gnn3d.New(gnn3d.Config{Seed: 1, Hidden: 16, Layers: 2, RBFBins: 8})
	res, err := route.Route(g, guidance.Uniform(len(g.Place.Circuit.Nets)), route.Config{})
	if err != nil {
		b.Fatal(err)
	}
	sim, err := circuit.NewSimulator(g.Place.Circuit, extract.Extract(g, res))
	if err != nil {
		b.Fatal(err)
	}
	ds, err := dataset.Generate(context.Background(), g, dataset.Config{Samples: 8, Seed: 1, IncludeUniform: true})
	if err != nil {
		b.Fatal(err)
	}

	phases := []struct {
		name string
		run  func(w int) error
	}{
		{"relaxation", func(w int) error {
			_, err := relax.Optimize(context.Background(), m, hg, relax.Config{Restarts: 8, MaxIter: 10, Seed: 1, Workers: w})
			return err
		}},
		{"montecarlo", func(w int) error {
			_, err := sim.MonteCarloOffsetWorkers(4000, 1, w)
			return err
		}},
		{"dataset", func(w int) error {
			_, err := dataset.Generate(context.Background(), g, dataset.Config{Samples: 8, Seed: 1, Workers: w, IncludeUniform: true})
			return err
		}},
		{"train", func(w int) error {
			mm := gnn3d.New(gnn3d.Config{Seed: 1, Hidden: 16, Layers: 2, RBFBins: 8})
			_, err := mm.Fit(context.Background(), hg, ds.Samples(), gnn3d.TrainConfig{Epochs: 3, Seed: 1, BatchSize: 4, Workers: w})
			return err
		}},
	}

	measure := func(run func(int) error, w int) time.Duration {
		t0 := time.Now()
		if err := run(w); err != nil {
			b.Fatal(err)
		}
		return time.Since(t0)
	}

	rep := parallelReport{
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(), Workers: workers,
		DegenerateHost: runtime.NumCPU() < 2,
	}
	logSum := 0.0
	for _, p := range phases {
		p.run(workers) // warm caches so neither arm pays first-touch costs
		serial := measure(p.run, 1)
		par := measure(p.run, workers)
		sp := serial.Seconds() / par.Seconds()
		rep.Phases = append(rep.Phases, parallelPhase{
			Phase:      p.name,
			SerialMs:   float64(serial.Microseconds()) / 1e3,
			ParallelMs: float64(par.Microseconds()) / 1e3,
			Speedup:    sp,
		})
		logSum += math.Log(sp)
		b.Logf("%-12s serial %8.1fms  parallel(%d) %8.1fms  speedup %.2fx",
			p.name, serial.Seconds()*1e3, workers, par.Seconds()*1e3, sp)
	}
	geo := math.Exp(logSum / float64(len(phases)))
	b.ReportMetric(geo, "speedup")
	b.ReportMetric(float64(workers), "workers")
	if rep.DegenerateHost {
		b.Logf("single-CPU host: speedups read ~1.0x by construction, skipping speedup assertion")
	} else if workers >= 4 && geo < 1.0 {
		// On a genuinely parallel host the parallel arm must not lose to the
		// serial one; the ≥2x target applies at GOMAXPROCS ≥ 4.
		b.Errorf("geomean speedup %.2fx < 1.0x on a %d-CPU host", geo, runtime.NumCPU())
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := atomicfile.WriteFile("BENCH_parallel.json", append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Log("wrote BENCH_parallel.json")

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := phases[0].run(workers); err != nil {
			b.Fatal(err)
		}
	}
}

// routeBenchRow is one circuit's row in the BENCH_route.json report.
type routeBenchRow struct {
	Benchmark    string  `json:"benchmark"`
	RouteMs      float64 `json:"route_ms"`
	AllocsPerOp  uint64  `json:"allocs_per_op"`
	BytesPerOp   uint64  `json:"bytes_per_op"`
	WirelengthNm int     `json:"wirelength_nm"`
	Vias         int     `json:"vias"`
	Iterations   int     `json:"iterations"`
}

// routeReport is the machine-readable output of BenchmarkRouteReport,
// mirroring BENCH_parallel.json: host shape up front so numbers recorded on
// a degenerate machine are recognizable as such.
type routeReport struct {
	GoMaxProcs     int             `json:"gomaxprocs"`
	NumCPU         int             `json:"numcpu"`
	DegenerateHost bool            `json:"degenerate_host"`
	Rows           []routeBenchRow `json:"benchmarks"`
}

// BenchmarkRouteReport measures one full detailed-routing pass per OTA
// benchmark — wall time, allocations and routed quality — and writes
// BENCH_route.json next to BENCH_parallel.json. This is the perf-regression
// record for the zero-allocation router core: rerun with `make bench-route`
// and diff the file to see whether a change moved the hot path.
func BenchmarkRouteReport(b *testing.B) {
	rep := routeReport{
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		DegenerateHost: runtime.NumCPU() < 2,
	}
	const reps = 3
	for _, bc := range []struct {
		name string
		mk   func() *netlist.Circuit
	}{
		{"OTA1", netlist.OTA1}, {"OTA2", netlist.OTA2}, {"OTA3", netlist.OTA3}, {"OTA4", netlist.OTA4},
	} {
		c := bc.mk()
		g := builtGrid(b, c)
		gd := guidance.Uniform(len(c.Nets))
		res, err := route.Route(g, gd, route.Config{}) // warm-up + quality row
		if err != nil {
			b.Fatal(err)
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := route.Route(g, gd, route.Config{}); err != nil {
				b.Fatal(err)
			}
		}
		wall := time.Since(t0)
		runtime.ReadMemStats(&after)
		row := routeBenchRow{
			Benchmark:    bc.name,
			RouteMs:      wall.Seconds() * 1e3 / reps,
			AllocsPerOp:  (after.Mallocs - before.Mallocs) / reps,
			BytesPerOp:   (after.TotalAlloc - before.TotalAlloc) / reps,
			WirelengthNm: res.WirelengthNm,
			Vias:         res.Vias,
			Iterations:   res.Iterations,
		}
		rep.Rows = append(rep.Rows, row)
		b.Logf("%-5s route %8.1fms  %7d allocs/op  %9d B/op  wl=%dnm vias=%d",
			bc.name, row.RouteMs, row.AllocsPerOp, row.BytesPerOp, row.WirelengthNm, row.Vias)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := atomicfile.WriteFile("BENCH_route.json", append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Log("wrote BENCH_route.json")

	g := builtGrid(b, netlist.OTA1())
	gd := guidance.Uniform(len(g.Place.Circuit.Nets))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := route.Route(g, gd, route.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// modelBenchArm is one measured arm of the BENCH_model.json report.
type modelBenchArm struct {
	MsPerOp     float64 `json:"ms_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
}

// modelReport is the machine-readable output of BenchmarkModelReport — the
// perf-regression record for the zero-allocation model inference core,
// following the BENCH_route.json shape (host fields up front so numbers
// recorded on a degenerate machine are recognizable as such).
type modelReport struct {
	GoMaxProcs     int  `json:"gomaxprocs"`
	NumCPU         int  `json:"numcpu"`
	DegenerateHost bool `json:"degenerate_host"`

	// SessionAllocsPerRun is the steady-state allocation count of one full
	// guidance-gradient cycle (SetC → Forward → Backward) on a warm session
	// tape, measured with testing.AllocsPerRun. This is the CI-gated pin:
	// the tape arena makes it independent of model size.
	SessionAllocsPerRun float64 `json:"session_allocs_per_run"`

	Session   modelBenchArm `json:"session_core"`
	Transient modelBenchArm `json:"transient_core"`
	// AllocReduction = transient allocs/op ÷ session allocs/op (CI-gated ≥5×).
	AllocReduction float64 `json:"alloc_reduction"`
	CoreSpeedup    float64 `json:"core_speedup"`

	// Candidate scoring: NDerive guidance sets through one stacked
	// ForwardBatch versus sequential Predicts.
	Candidates        int     `json:"candidates"`
	BatchedScoreMs    float64 `json:"batched_score_ms"`
	SequentialScoreMs float64 `json:"sequential_score_ms"`
	ScoreSpeedup      float64 `json:"score_speedup"`
}

// BenchmarkModelReport measures the 3DGNN inference core — one Forward+
// Backward guidance-gradient cycle, tape-backed session versus the transient
// per-op-allocating path, plus batched-versus-sequential candidate scoring —
// and writes BENCH_model.json next to BENCH_route.json. Rerun with
// `make bench-model` and diff the file to see whether a change moved the
// relaxation's hot path. Allocation gates (host-independent) fail the
// benchmark on regression; wall-time gates apply only off degenerate hosts.
func BenchmarkModelReport(b *testing.B) {
	g := builtGrid(b, netlist.OTA1())
	hg, err := hetgraph.Build(g, hetgraph.Config{})
	if err != nil {
		b.Fatal(err)
	}
	// The relaxation-scale model (the same configuration BenchmarkRelaxation
	// and the golden suite pin): this report measures relax's inner loop.
	m := gnn3d.New(gnn3d.Config{Seed: 1, Hidden: 16, Layers: 2, RBFBins: 8})
	nets := len(g.Place.Circuit.Nets)
	rng := rand.New(rand.NewSource(7))
	const nDerive = 4
	cs := make([]*tensor.Tensor, nDerive)
	for i := range cs {
		gd := guidance.Sample(nets, rng, 2)
		cs[i] = tensor.FromSlice(gd.Flat(), nets, 3)
	}

	rep := modelReport{
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		DegenerateHost: runtime.NumCPU() < 2,
		Candidates:     nDerive,
	}

	// measure times reps calls of fn and reports wall/allocs/bytes per op.
	measure := func(reps int, fn func(int)) modelBenchArm {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			fn(i)
		}
		wall := time.Since(t0)
		runtime.ReadMemStats(&after)
		return modelBenchArm{
			MsPerOp:     wall.Seconds() * 1e3 / float64(reps),
			AllocsPerOp: (after.Mallocs - before.Mallocs) / uint64(reps),
			BytesPerOp:  (after.TotalAlloc - before.TotalAlloc) / uint64(reps),
		}
	}

	sess := gnn3d.NewInferSession(m, hg)
	cycle := func(i int) {
		if err := sess.SetC(cs[i%nDerive].Data); err != nil {
			b.Fatal(err)
		}
		if err := ad.Backward(ad.Sum(sess.Forward())); err != nil {
			b.Fatal(err)
		}
	}
	cycle(0) // record the tape
	cycle(1) // stabilize the scratch pool
	j := 0
	rep.SessionAllocsPerRun = testing.AllocsPerRun(50, func() {
		cycle(j)
		j++
	})
	rep.Session = measure(30, cycle)
	rep.Transient = measure(30, func(i int) {
		cv := ad.Leaf(cs[i%nDerive].Clone(), true)
		pred, err := m.Forward(hg, cv)
		if err != nil {
			b.Fatal(err)
		}
		if err := ad.Backward(ad.Sum(pred)); err != nil {
			b.Fatal(err)
		}
	})
	rep.AllocReduction = float64(rep.Transient.AllocsPerOp) / math.Max(1, float64(rep.Session.AllocsPerOp))
	rep.CoreSpeedup = rep.Transient.MsPerOp / rep.Session.MsPerOp

	if _, err := m.PredictBatch(hg, cs); err != nil { // warm both arms
		b.Fatal(err)
	}
	rep.BatchedScoreMs = measure(30, func(int) {
		if _, err := m.PredictBatch(hg, cs); err != nil {
			b.Fatal(err)
		}
	}).MsPerOp
	rep.SequentialScoreMs = measure(30, func(int) {
		for _, c := range cs {
			if _, err := m.Predict(hg, c); err != nil {
				b.Fatal(err)
			}
		}
	}).MsPerOp
	rep.ScoreSpeedup = rep.SequentialScoreMs / rep.BatchedScoreMs

	b.Logf("session   %8.2fms  %7d allocs/op  %9d B/op  (steady-state %.1f allocs/cycle)",
		rep.Session.MsPerOp, rep.Session.AllocsPerOp, rep.Session.BytesPerOp, rep.SessionAllocsPerRun)
	b.Logf("transient %8.2fms  %7d allocs/op  %9d B/op  (reduction %.1fx, speedup %.2fx)",
		rep.Transient.MsPerOp, rep.Transient.AllocsPerOp, rep.Transient.BytesPerOp,
		rep.AllocReduction, rep.CoreSpeedup)
	b.Logf("scoring %d candidates: batched %8.2fms  sequential %8.2fms  (%.2fx)",
		nDerive, rep.BatchedScoreMs, rep.SequentialScoreMs, rep.ScoreSpeedup)
	b.ReportMetric(rep.SessionAllocsPerRun, "allocs/cycle")
	b.ReportMetric(rep.AllocReduction, "alloc-reduction")

	// Allocation behavior is host-independent: gate it everywhere.
	if rep.SessionAllocsPerRun > 8 {
		b.Errorf("steady-state session cycle allocates %.1f/run, pin is <= 8 — the tape arena regressed",
			rep.SessionAllocsPerRun)
	}
	if rep.AllocReduction < 5 {
		b.Errorf("session path allocates only %.1fx less than transient, want >= 5x", rep.AllocReduction)
	}
	// Wall time is noisy on starved hosts; gate only the core win, which has
	// a wide margin, and only on real machines.
	if !rep.DegenerateHost && rep.CoreSpeedup < 1.0 {
		b.Errorf("tape-backed session slower than transient path: %.2fx", rep.CoreSpeedup)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := atomicfile.WriteFile("BENCH_model.json", append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Log("wrote BENCH_model.json")

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle(i)
	}
}

// BenchmarkRelaxation measures the pool-assisted potential relaxation on a
// trained-from-scratch small model.
func BenchmarkRelaxation(b *testing.B) {
	g := builtGrid(b, netlist.OTA1())
	hg, err := hetgraph.Build(g, hetgraph.Config{})
	if err != nil {
		b.Fatal(err)
	}
	m := gnn3d.New(gnn3d.Config{Seed: 1, Hidden: 16, Layers: 2, RBFBins: 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relax.Optimize(context.Background(), m, hg, relax.Config{Restarts: 4, MaxIter: 15, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
