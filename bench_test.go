// Package analogfold_bench contains the benchmark harness that regenerates
// every table and figure of the paper (see DESIGN.md §4 for the experiment
// index). Each benchmark prints the same rows/series the paper reports;
// absolute numbers come from the simulated substrate, the shapes are the
// reproduction target.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package analogfold_bench

import (
	"testing"

	"analogfold/internal/circuit"
	"analogfold/internal/core"
	"analogfold/internal/dataset"
	"analogfold/internal/extract"
	"analogfold/internal/gnn3d"
	"analogfold/internal/grid"
	"analogfold/internal/guidance"
	"analogfold/internal/hetgraph"
	"analogfold/internal/netlist"
	"analogfold/internal/place"
	"analogfold/internal/relax"
	"analogfold/internal/route"
	"analogfold/internal/tech"
	"analogfold/internal/tensor"
)

// quickOpts are reduced-scale learning settings so the full harness runs in
// minutes; use cmd/analogfold table2 for full-scale reproduction.
func quickOpts() core.Options {
	return core.Options{
		Samples: 16, TrainEpochs: 8, RelaxRestarts: 4, NDerive: 2,
		PlaceIters: 1500, VAECorpus: 2, VAEEpochs: 10, Seed: 1,
	}
}

func builtGrid(b *testing.B, c *netlist.Circuit) *grid.Grid {
	b.Helper()
	p, err := place.Place(c, place.Config{Profile: place.ProfileA, Seed: 1, Iterations: 1500})
	if err != nil {
		b.Fatal(err)
	}
	g, err := grid.Build(p, tech.Sim40())
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkTable1Stats regenerates Table 1 (benchmark circuit statistics).
func BenchmarkTable1Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, c := range netlist.Benchmarks() {
			s := c.Stats()
			if i == 0 {
				b.Logf("Table1 %s: PMOS=%d NMOS=%d Cap=%d Res=%d Total=%d",
					c.Name, s.NumPMOS, s.NumNMOS, s.NumCap, s.NumRes, s.Total)
			}
		}
	}
}

// benchTable2Row runs the three-method comparison for one benchmark at quick
// scale — one iteration regenerates one Table-2 block.
func benchTable2Row(b *testing.B, c func() *netlist.Circuit, prof place.Profile) {
	for i := 0; i < b.N; i++ {
		row, err := core.RunBenchmark(c(), prof, quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", core.FormatRow(row))
		}
	}
}

// BenchmarkTable2_OTA1A .. _OTA4B regenerate the ten Table-2 blocks.
func BenchmarkTable2_OTA1A(b *testing.B) { benchTable2Row(b, netlist.OTA1, place.ProfileA) }

// BenchmarkTable2_OTA1B covers OTA1 under profile B.
func BenchmarkTable2_OTA1B(b *testing.B) { benchTable2Row(b, netlist.OTA1, place.ProfileB) }

// BenchmarkTable2_OTA1C covers OTA1 under profile C.
func BenchmarkTable2_OTA1C(b *testing.B) { benchTable2Row(b, netlist.OTA1, place.ProfileC) }

// BenchmarkTable2_OTA2A covers OTA2 under profile A.
func BenchmarkTable2_OTA2A(b *testing.B) { benchTable2Row(b, netlist.OTA2, place.ProfileA) }

// BenchmarkTable2_OTA2B covers OTA2 under profile B.
func BenchmarkTable2_OTA2B(b *testing.B) { benchTable2Row(b, netlist.OTA2, place.ProfileB) }

// BenchmarkTable2_OTA2C covers OTA2 under profile C.
func BenchmarkTable2_OTA2C(b *testing.B) { benchTable2Row(b, netlist.OTA2, place.ProfileC) }

// BenchmarkTable2_OTA3A covers OTA3 under profile A.
func BenchmarkTable2_OTA3A(b *testing.B) { benchTable2Row(b, netlist.OTA3, place.ProfileA) }

// BenchmarkTable2_OTA3B covers OTA3 under profile B.
func BenchmarkTable2_OTA3B(b *testing.B) { benchTable2Row(b, netlist.OTA3, place.ProfileB) }

// BenchmarkTable2_OTA4A covers OTA4 under profile A (the paper's corner case).
func BenchmarkTable2_OTA4A(b *testing.B) { benchTable2Row(b, netlist.OTA4, place.ProfileA) }

// BenchmarkTable2_OTA4B covers OTA4 under profile B.
func BenchmarkTable2_OTA4B(b *testing.B) { benchTable2Row(b, netlist.OTA4, place.ProfileB) }

// BenchmarkFig5Breakdown regenerates the Figure-5 runtime breakdown on OTA1.
func BenchmarkFig5Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := core.NewFlow(netlist.OTA1(), place.ProfileA, quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		out, err := f.RunAnalogFold()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", core.FormatBreakdown(core.BreakdownOf(out.Times)))
		}
	}
}

// BenchmarkFig1Guidance regenerates the Figure-1 non-uniform guidance data.
func BenchmarkFig1Guidance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := core.NewFlow(netlist.OTA1(), place.ProfileA, quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		gd, err := f.DeriveGuidance()
		if err != nil {
			b.Fatal(err)
		}
		if err := gd.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Render regenerates the Figure-6 routed-layout comparison.
func BenchmarkFig6Render(b *testing.B) {
	f, err := core.NewFlow(netlist.OTA1(), place.ProfileA, quickOpts())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := f.RunGeniusRouted()
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// --- Component benchmarks (throughput of each substrate) ---

// BenchmarkPlaceOTA1 measures the annealing placer.
func BenchmarkPlaceOTA1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := place.Place(netlist.OTA1(), place.Config{Profile: place.ProfileA, Seed: 1, Iterations: 2000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteOTA1 measures one full detailed-routing pass.
func BenchmarkRouteOTA1(b *testing.B) {
	g := builtGrid(b, netlist.OTA1())
	gd := guidance.Uniform(len(g.Place.Circuit.Nets))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := route.Route(g, gd, route.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteOTA3 measures routing the larger telescopic benchmark.
func BenchmarkRouteOTA3(b *testing.B) {
	g := builtGrid(b, netlist.OTA3())
	gd := guidance.Uniform(len(g.Place.Circuit.Nets))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := route.Route(g, gd, route.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtract measures parasitic extraction.
func BenchmarkExtract(b *testing.B) {
	g := builtGrid(b, netlist.OTA1())
	res, err := route.Route(g, guidance.Uniform(len(g.Place.Circuit.Nets)), route.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		extract.Extract(g, res)
	}
}

// BenchmarkSimulate measures one five-metric MNA evaluation.
func BenchmarkSimulate(b *testing.B) {
	g := builtGrid(b, netlist.OTA1())
	res, err := route.Route(g, guidance.Uniform(len(g.Place.Circuit.Nets)), route.Config{})
	if err != nil {
		b.Fatal(err)
	}
	par := extract.Extract(g, res)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := circuit.Evaluate(g.Place.Circuit, par); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGNNForward measures one 3DGNN prediction.
func BenchmarkGNNForward(b *testing.B) {
	g := builtGrid(b, netlist.OTA1())
	hg, err := hetgraph.Build(g, hetgraph.Config{})
	if err != nil {
		b.Fatal(err)
	}
	m := gnn3d.New(gnn3d.Config{Seed: 1})
	cu := guidance.Uniform(len(g.Place.Circuit.Nets))
	ct := tensor.FromSlice(cu.Flat(), len(cu.PerNet), 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(hg, ct); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatasetSample measures one label generation (route + extract +
// simulate), the unit of database construction.
func BenchmarkDatasetSample(b *testing.B) {
	g := builtGrid(b, netlist.OTA1())
	gd := guidance.Uniform(len(g.Place.Circuit.Nets))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.Label(g, gd, route.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRelaxation measures the pool-assisted potential relaxation on a
// trained-from-scratch small model.
func BenchmarkRelaxation(b *testing.B) {
	g := builtGrid(b, netlist.OTA1())
	hg, err := hetgraph.Build(g, hetgraph.Config{})
	if err != nil {
		b.Fatal(err)
	}
	m := gnn3d.New(gnn3d.Config{Seed: 1, Hidden: 16, Layers: 2, RBFBins: 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relax.Optimize(m, hg, relax.Config{Restarts: 4, MaxIter: 15, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
