// sweep routes every benchmark under all four placement profiles with the
// unguided router, showing how strongly the placement's net-weight profile
// moves post-layout performance — the effect the paper's Table 2 samples via
// its A/B/C placements, including the "corner" placements where an unguided
// router loses a large fraction of the schematic performance.
//
// Run with:
//
//	go run ./examples/sweep
package main

import (
	"context"
	"fmt"
	"log"

	"analogfold/internal/core"
	"analogfold/internal/netlist"
	"analogfold/internal/place"
)

func main() {
	profiles := []place.Profile{place.ProfileA, place.ProfileB, place.ProfileC, place.ProfileD}
	fmt.Printf("%-10s %10s %10s %10s %10s %10s\n",
		"bench", "offset µV", "CMRR dB", "UGB MHz", "gain dB", "WL µm")
	for _, c := range netlist.Benchmarks() {
		for _, p := range profiles {
			flow, err := core.NewFlow(c, p, core.Options{Seed: 1, PlaceIters: 2500})
			if err != nil {
				log.Fatal(err)
			}
			out, err := flow.RunMagical(context.Background())
			if err != nil {
				log.Fatal(err)
			}
			m := out.Metrics
			fmt.Printf("%-10s %10.0f %10.2f %10.1f %10.2f %10.1f\n",
				flow.Name(), m.OffsetUV, m.CMRRdB, m.BandwidthMHz, m.GainDB,
				float64(out.WirelengthNm)/1000)
		}
	}
}
