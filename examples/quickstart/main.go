// Quickstart: place, route and evaluate one OTA with the public flow API.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"analogfold/internal/core"
	"analogfold/internal/netlist"
	"analogfold/internal/place"
)

func main() {
	// Build the OTA1 benchmark (a 2-stage Miller-compensated OTA) and place
	// it under the uniform net-weight profile A.
	ota := netlist.OTA1()
	stats := ota.Stats()
	fmt.Printf("circuit %s: %d PMOS, %d NMOS, %d caps, %d nets\n",
		ota.Name, stats.NumPMOS, stats.NumNMOS, stats.NumCap, stats.NumNets)

	flow, err := core.NewFlow(ota, place.ProfileA, core.Options{
		Seed:       1,
		PlaceIters: 2000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed %s: die %v, symmetry axis at x=%d nm\n",
		flow.Name(), flow.Placement.Die, flow.Placement.Axis)

	// Parasitic-free schematic reference.
	sch, err := flow.Schematic()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schematic:  gain %.1f dB, UGB %.1f MHz, CMRR %.1f dB, noise %.1f µVrms\n",
		sch.GainDB, sch.BandwidthMHz, sch.CMRRdB, sch.NoiseUVrms)

	// Route with the unguided baseline router and simulate the extracted
	// post-layout netlist.
	out, err := flow.RunMagical(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	m := out.Metrics
	fmt.Printf("post-layout: gain %.1f dB, UGB %.1f MHz, CMRR %.1f dB, noise %.1f µVrms\n",
		m.GainDB, m.BandwidthMHz, m.CMRRdB, m.NoiseUVrms)
	fmt.Printf("             offset %.0f µV, wirelength %.1f µm, %d vias, routed in %s\n",
		m.OffsetUV, float64(out.WirelengthNm)/1000, out.Vias, out.Runtime)
}
