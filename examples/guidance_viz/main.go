// guidance_viz reproduces Figure 1: it derives non-uniform routing guidance
// for a placed OTA and writes (a) an SVG where each pin access point draws a
// cross with arm lengths inversely proportional to the directional cost —
// long horizontal arms mean "route this net horizontally" — and (b) the 3D
// point-cloud CSV behind Figure 1(b).
//
// Run with:
//
//	go run ./examples/guidance_viz [-out DIR]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"analogfold/internal/core"
	"analogfold/internal/netlist"
	"analogfold/internal/place"
	"analogfold/internal/viz"
)

func main() {
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	flow, err := core.NewFlow(netlist.OTA1(), place.ProfileA, core.Options{
		Seed: 1, Samples: 24, TrainEpochs: 12, RelaxRestarts: 4, PlaceIters: 2000,
	})
	if err != nil {
		log.Fatal(err)
	}
	gd, err := flow.DeriveGuidance(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	// Summarize the non-uniformity: per net type, the mean directional costs.
	fmt.Println("derived non-uniform guidance (mean cost per net type):")
	type acc struct {
		n       int
		x, y, z float64
	}
	byType := map[string]*acc{}
	for ni, n := range flow.Circuit.Nets {
		a := byType[n.Type.String()]
		if a == nil {
			a = &acc{}
			byType[n.Type.String()] = a
		}
		v := gd.PerNet[ni]
		a.n++
		a.x += v[0]
		a.y += v[1]
		a.z += v[2]
	}
	for _, t := range []string{"input", "signal", "output", "bias", "power", "ground"} {
		if a := byType[t]; a != nil {
			fmt.Printf("  %-7s (%2d nets): Cx=%.2f Cy=%.2f Cz=%.2f\n",
				t, a.n, a.x/float64(a.n), a.y/float64(a.n), a.z/float64(a.n))
		}
	}

	svgPath := filepath.Join(*out, "fig1_guidance.svg")
	csvPath := filepath.Join(*out, "fig1_guidance.csv")
	if err := os.WriteFile(svgPath, []byte(viz.GuidanceSVG(flow.Grid, gd, "OTA1-A non-uniform guidance")), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(csvPath, []byte(viz.GuidanceCSV(flow.Grid, gd)), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", svgPath)
	fmt.Println("wrote", csvPath)
}
