// signoff runs the verification artifacts an analog layout goes through
// after routing: DRC, LVS, parasitic extraction to SPEF, AC sweep with phase
// margin, step response, and Monte Carlo offset analysis. It demonstrates
// the substrate packages as a standalone sign-off toolkit, independent of the
// ML flow.
//
// Run with:
//
//	go run ./examples/signoff [-out DIR]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"analogfold/internal/circuit"
	"analogfold/internal/drc"
	"analogfold/internal/export"
	"analogfold/internal/extract"
	"analogfold/internal/grid"
	"analogfold/internal/guidance"
	"analogfold/internal/lvs"
	"analogfold/internal/netlist"
	"analogfold/internal/place"
	"analogfold/internal/route"
	"analogfold/internal/tech"
)

func main() {
	out := flag.String("out", ".", "output directory for artifacts")
	flag.Parse()

	c := netlist.OTA3()
	p, err := place.Place(c, place.Config{Profile: place.ProfileA, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	g, err := grid.Build(p, tech.Sim40())
	if err != nil {
		log.Fatal(err)
	}
	res, err := route.Route(g, guidance.Uniform(len(c.Nets)), route.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(route.Report(g, res).String())

	// Physical verification.
	if vs := drc.Check(g, res); len(vs) == 0 {
		fmt.Println("DRC: clean")
	} else {
		fmt.Printf("DRC: %d violations\n", len(vs))
	}
	if rep := lvs.Check(g, res); rep.Clean() {
		fmt.Printf("LVS: clean (%d/%d nets verified)\n", rep.NetsOK, rep.NetsTotal)
	} else {
		fmt.Printf("LVS: %d violations\n", len(rep.Violations))
	}

	// Extraction artifacts.
	par := extract.Extract(g, res)
	spef := filepath.Join(*out, c.Name+".spef")
	f, err := os.Create(spef)
	if err != nil {
		log.Fatal(err)
	}
	if err := export.WriteSPEF(f, c, par); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Println("extraction: wrote", spef)

	// Electrical sign-off.
	sim, err := circuit.NewSimulator(c, par)
	if err != nil {
		log.Fatal(err)
	}
	sweep, err := sim.ACSweep(1, 1e10, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AC: phase margin %.1f°\n", circuit.PhaseMarginDeg(sweep))

	tr, err := sim.StepResponse(1e-5, 2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transient: settles in %.1f ns (±1%%), overshoot %.1f%%\n",
		tr.SettlingTimeNs, tr.OvershootPct)

	mc, err := sim.MonteCarloOffset(1000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Monte Carlo offset: sigma %.1f µV, p99 %.1f µV over %d samples\n",
		mc.StdUV, mc.P99UV, mc.Samples)

	m, err := sim.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metrics: offset %.0f µV, CMRR %.1f dB, UGB %.1f MHz, gain %.1f dB, noise %.1f µVrms\n",
		m.OffsetUV, m.CMRRdB, m.BandwidthMHz, m.GainDB, m.NoiseUVrms)
}
