// ota_flow runs the full three-way Table-2 comparison on one benchmark:
// MagicalRoute (unguided), GeniusRoute (VAE imitation guidance) and
// AnalogFold (3DGNN + potential relaxation), printing the paper-style block
// and the Figure-5 runtime breakdown.
//
// Run with:
//
//	go run ./examples/ota_flow            # quick settings
//	go run ./examples/ota_flow -full      # paper-scale learning settings
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"analogfold/internal/core"
	"analogfold/internal/netlist"
	"analogfold/internal/place"
)

func main() {
	full := flag.Bool("full", false, "use full-scale learning settings")
	flag.Parse()

	opts := core.Options{
		Seed: 1, Samples: 24, TrainEpochs: 12, RelaxRestarts: 5,
		PlaceIters: 2000, VAECorpus: 3, VAEEpochs: 15,
	}
	if *full {
		opts = core.Options{Seed: 1}
	}

	row, err := core.RunBenchmark(context.Background(), netlist.OTA2(), place.ProfileA, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(core.FormatRow(row))
	fmt.Println()
	fmt.Print(core.FormatBreakdown(core.BreakdownOf(row.Ours.Times)))

	// Who won each metric?
	fmt.Println()
	best := func(name string, mag, gen, ours float64, lower bool) {
		win := "AnalogFold"
		b := ours
		better := func(x, y float64) bool {
			if lower {
				return x < y
			}
			return x > y
		}
		if better(mag, b) {
			win, b = "MagicalRoute", mag
		}
		if better(gen, b) {
			win = "GeniusRoute"
		}
		fmt.Printf("  %-16s best: %s\n", name, win)
	}
	best("offset", row.Magical.Metrics.OffsetUV, row.Genius.Metrics.OffsetUV, row.Ours.Metrics.OffsetUV, true)
	best("CMRR", row.Magical.Metrics.CMRRdB, row.Genius.Metrics.CMRRdB, row.Ours.Metrics.CMRRdB, false)
	best("bandwidth", row.Magical.Metrics.BandwidthMHz, row.Genius.Metrics.BandwidthMHz, row.Ours.Metrics.BandwidthMHz, false)
	best("gain", row.Magical.Metrics.GainDB, row.Genius.Metrics.GainDB, row.Ours.Metrics.GainDB, false)
	best("noise", row.Magical.Metrics.NoiseUVrms, row.Genius.Metrics.NoiseUVrms, row.Ours.Metrics.NoiseUVrms, true)
}
