package analogfold_bench

import (
	"context"
	"encoding/json"
	"runtime"
	"sort"
	"testing"
	"time"

	"analogfold/internal/atomicfile"
	"analogfold/internal/gnn3d"
	"analogfold/internal/grid"
	"analogfold/internal/guidance"
	"analogfold/internal/hetgraph"
	"analogfold/internal/netlist"
	"analogfold/internal/obs"
	"analogfold/internal/place"
	"analogfold/internal/relax"
	"analogfold/internal/route"
	"analogfold/internal/tech"
)

// obsBenchRow is one workload's row in the BENCH_obs.json report. A run that
// measures faster with telemetry on than off is scheduling noise, not a real
// speedup: its overhead is clamped to 0 and the row flagged noise_floor.
type obsBenchRow struct {
	Workload    string  `json:"workload"`
	OffMs       float64 `json:"off_ms"`
	OnMs        float64 `json:"on_ms"`
	OverheadPct float64 `json:"overhead_pct"`
	NoiseFloor  bool    `json:"noise_floor,omitempty"`
	Events      uint64  `json:"events_recorded"`
}

// overheadPct computes the on-vs-off overhead, clamping negative values
// (below the measurement noise floor) to zero with a flag.
func overheadPct(off, on time.Duration) (float64, bool) {
	pct := (on.Seconds()/off.Seconds() - 1) * 100
	if pct < 0 {
		return 0, true
	}
	return pct, false
}

// obsReport is the machine-readable output of BenchmarkObsOverhead, with the
// same host-shape preamble as BENCH_route.json / BENCH_parallel.json.
type obsReport struct {
	GoMaxProcs     int           `json:"gomaxprocs"`
	NumCPU         int           `json:"numcpu"`
	DegenerateHost bool          `json:"degenerate_host"`
	Rows           []obsBenchRow `json:"workloads"`
}

// obsGrid is builtGrid for either test or benchmark callers.
func obsGrid(tb testing.TB) *grid.Grid {
	tb.Helper()
	p, err := place.Place(netlist.OTA1(), place.Config{Profile: place.ProfileA, Seed: 1, Iterations: 1500})
	if err != nil {
		tb.Fatal(err)
	}
	g, err := grid.Build(p, tech.Sim40())
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// medianWall runs fn reps times and returns the median wall time — the
// noise-resistant center for an overhead comparison.
func medianWall(tb testing.TB, reps int, fn func() error) time.Duration {
	tb.Helper()
	times := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			tb.Fatal(err)
		}
		times = append(times, time.Since(t0))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2]
}

// BenchmarkObsOverhead measures each instrumented hot path — negotiated
// routing and potential relaxation — with the telemetry sink detached (the
// production default for library callers) and attached, and writes
// BENCH_obs.json. The design budget is <5% overhead when enabled and zero
// when disabled; TestObsOverheadSmoke enforces the enabled budget with
// scheduling slack, and TestDisabledPathAllocationFree (internal/obs) pins
// the disabled one.
func BenchmarkObsOverhead(b *testing.B) {
	g := obsGrid(b)
	gd := guidance.Uniform(len(g.Place.Circuit.Nets))
	hg, err := hetgraph.Build(g, hetgraph.Config{})
	if err != nil {
		b.Fatal(err)
	}
	m := gnn3d.New(gnn3d.Config{Seed: 1, Hidden: 16, Layers: 2, RBFBins: 8})
	workloads := []struct {
		name string
		run  func(ctx context.Context) error
	}{
		{"route", func(ctx context.Context) error {
			_, err := route.RouteCtx(ctx, g, gd, route.Config{})
			return err
		}},
		{"relax", func(ctx context.Context) error {
			_, err := relax.Optimize(ctx, m, hg, relax.Config{Restarts: 4, MaxIter: 10, Seed: 1})
			return err
		}},
	}

	rep := obsReport{
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		DegenerateHost: runtime.NumCPU() < 2,
	}
	const reps = 5
	for _, w := range workloads {
		if err := w.run(context.Background()); err != nil { // warm-up
			b.Fatal(err)
		}
		off := medianWall(b, reps, func() error { return w.run(context.Background()) })
		tel := obs.New(obs.Options{Seed: 1})
		ctx := obs.WithTelemetry(context.Background(), tel)
		on := medianWall(b, reps, func() error { return w.run(ctx) })
		pct, noise := overheadPct(off, on)
		row := obsBenchRow{
			Workload:    w.name,
			OffMs:       float64(off.Microseconds()) / 1e3,
			OnMs:        float64(on.Microseconds()) / 1e3,
			OverheadPct: pct,
			NoiseFloor:  noise,
			Events:      tel.Recorder().Total(),
		}
		rep.Rows = append(rep.Rows, row)
		b.Logf("%-9s off %8.2fms  on %8.2fms  overhead %+6.2f%%  noise_floor=%v events=%d",
			w.name, row.OffMs, row.OnMs, row.OverheadPct, row.NoiseFloor, row.Events)
	}

	// The propagation workload isolates the cross-process tracing machinery:
	// "off" is plain enabled telemetry, "on" additionally joins a remote
	// parent, collects span summaries, and encodes the response trailer —
	// exactly what a traced serve request pays over an untraced one.
	{
		telOff := obs.New(obs.Options{Seed: 1})
		ctxOff := obs.WithTelemetry(context.Background(), telOff)
		if err := workloads[1].run(ctxOff); err != nil { // warm-up
			b.Fatal(err)
		}
		off := medianWall(b, reps, func() error { return workloads[1].run(ctxOff) })
		telOn := obs.New(obs.Options{Seed: 1})
		remote := obs.TraceContext{TraceID: "0123456789abcdef0123456789abcdef", SpanID: 0x42}
		on := medianWall(b, reps, func() error {
			ctx := obs.WithTelemetry(context.Background(), telOn)
			ctx = obs.WithRemoteParent(ctx, remote)
			col := obs.NewSpanCollector(obs.MaxExportSpans)
			ctx = obs.WithSpanCollector(ctx, col)
			if err := workloads[1].run(ctx); err != nil {
				return err
			}
			_ = col.EncodeJSON()
			return nil
		})
		pct, noise := overheadPct(off, on)
		row := obsBenchRow{
			Workload:    "propagate",
			OffMs:       float64(off.Microseconds()) / 1e3,
			OnMs:        float64(on.Microseconds()) / 1e3,
			OverheadPct: pct,
			NoiseFloor:  noise,
			Events:      telOn.Recorder().Total(),
		}
		rep.Rows = append(rep.Rows, row)
		b.Logf("%-9s off %8.2fms  on %8.2fms  overhead %+6.2f%%  noise_floor=%v events=%d",
			row.Workload, row.OffMs, row.OnMs, row.OverheadPct, row.NoiseFloor, row.Events)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := atomicfile.WriteFile("BENCH_obs.json", append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Log("wrote BENCH_obs.json")

	tel := obs.New(obs.Options{Seed: 1})
	ctx := obs.WithTelemetry(context.Background(), tel)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := route.RouteCtx(ctx, g, gd, route.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestObsOverheadSmoke is the cheap CI guard behind BenchmarkObsOverhead: the
// telemetry-on median of one routing pass must stay within the 5% budget plus
// a fixed scheduling-noise allowance. The absolute slack keeps a loaded CI
// host from flaking the suite while still catching a real regression (an
// accidental allocation or lock inside the A* loop shows up as tens of
// percent, not five).
func TestObsOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead timing in -short mode")
	}
	g := obsGrid(t)
	gd := guidance.Uniform(len(g.Place.Circuit.Nets))
	run := func(ctx context.Context) error {
		_, err := route.RouteCtx(ctx, g, gd, route.Config{})
		return err
	}
	if err := run(context.Background()); err != nil { // warm-up
		t.Fatal(err)
	}
	const reps = 5
	off := medianWall(t, reps, func() error { return run(context.Background()) })
	tel := obs.New(obs.Options{Seed: 1})
	ctx := obs.WithTelemetry(context.Background(), tel)
	on := medianWall(t, reps, func() error { return run(ctx) })

	slack := 10 * time.Millisecond
	budget := time.Duration(float64(off)*1.05) + slack
	t.Logf("route median: off=%v on=%v budget=%v events=%d", off, on, budget, tel.Recorder().Total())
	if on > budget {
		t.Errorf("telemetry overhead too high: on=%v > 1.05*off+%v (off=%v)", on, slack, off)
	}
	if tel.Recorder().Total() == 0 {
		t.Error("telemetry-on run recorded no events — instrumentation is disconnected")
	}
}

// TestPropagationOverheadSmoke enforces the tentpole's propagation budget:
// joining a remote trace and collecting span summaries for trailer export
// must stay within 5% of a plain telemetry-enabled run (plus the same
// scheduling-noise slack as TestObsOverheadSmoke).
func TestPropagationOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead timing in -short mode")
	}
	g := obsGrid(t)
	gd := guidance.Uniform(len(g.Place.Circuit.Nets))
	run := func(ctx context.Context) error {
		_, err := route.RouteCtx(ctx, g, gd, route.Config{})
		return err
	}
	// Both paths mirror a serve handler: a root span around the work. The
	// traced path additionally joins the remote parent, collects summaries,
	// and encodes the trailer — the propagation delta under test.
	telOff := obs.New(obs.Options{Seed: 1})
	ctxOff := obs.WithTelemetry(context.Background(), telOff)
	if err := run(ctxOff); err != nil { // warm-up
		t.Fatal(err)
	}
	const reps = 5
	off := medianWall(t, reps, func() error {
		sctx, span := obs.StartSpan(ctxOff, "request")
		defer span.End()
		return run(sctx)
	})

	telOn := obs.New(obs.Options{Seed: 1})
	remote := obs.TraceContext{TraceID: "0123456789abcdef0123456789abcdef", SpanID: 0x42}
	var exported int
	on := medianWall(t, reps, func() error {
		ctx := obs.WithTelemetry(context.Background(), telOn)
		ctx = obs.WithRemoteParent(ctx, remote)
		col := obs.NewSpanCollector(obs.MaxExportSpans)
		ctx = obs.WithSpanCollector(ctx, col)
		sctx, span := obs.StartSpan(ctx, "request")
		if err := run(sctx); err != nil {
			span.End()
			return err
		}
		span.End()
		if s := col.EncodeJSON(); s != "" {
			exported = len(s)
		}
		return nil
	})

	slack := 10 * time.Millisecond
	budget := time.Duration(float64(off)*1.05) + slack
	t.Logf("route median: plain=%v traced=%v budget=%v trailer_bytes=%d", off, on, budget, exported)
	if on > budget {
		t.Errorf("propagation overhead too high: traced=%v > 1.05*plain+%v (plain=%v)", on, slack, off)
	}
	if exported == 0 {
		t.Error("traced run exported no span summaries — the collector is disconnected")
	}
}
