package analogfold_bench

import (
	"context"
	"encoding/json"
	"runtime"
	"sort"
	"testing"
	"time"

	"analogfold/internal/atomicfile"
	"analogfold/internal/gnn3d"
	"analogfold/internal/grid"
	"analogfold/internal/guidance"
	"analogfold/internal/hetgraph"
	"analogfold/internal/netlist"
	"analogfold/internal/obs"
	"analogfold/internal/place"
	"analogfold/internal/relax"
	"analogfold/internal/route"
	"analogfold/internal/tech"
)

// obsBenchRow is one workload's row in the BENCH_obs.json report.
type obsBenchRow struct {
	Workload    string  `json:"workload"`
	OffMs       float64 `json:"off_ms"`
	OnMs        float64 `json:"on_ms"`
	OverheadPct float64 `json:"overhead_pct"`
	Events      uint64  `json:"events_recorded"`
}

// obsReport is the machine-readable output of BenchmarkObsOverhead, with the
// same host-shape preamble as BENCH_route.json / BENCH_parallel.json.
type obsReport struct {
	GoMaxProcs     int           `json:"gomaxprocs"`
	NumCPU         int           `json:"numcpu"`
	DegenerateHost bool          `json:"degenerate_host"`
	Rows           []obsBenchRow `json:"workloads"`
}

// obsGrid is builtGrid for either test or benchmark callers.
func obsGrid(tb testing.TB) *grid.Grid {
	tb.Helper()
	p, err := place.Place(netlist.OTA1(), place.Config{Profile: place.ProfileA, Seed: 1, Iterations: 1500})
	if err != nil {
		tb.Fatal(err)
	}
	g, err := grid.Build(p, tech.Sim40())
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// medianWall runs fn reps times and returns the median wall time — the
// noise-resistant center for an overhead comparison.
func medianWall(tb testing.TB, reps int, fn func() error) time.Duration {
	tb.Helper()
	times := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			tb.Fatal(err)
		}
		times = append(times, time.Since(t0))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2]
}

// BenchmarkObsOverhead measures each instrumented hot path — negotiated
// routing and potential relaxation — with the telemetry sink detached (the
// production default for library callers) and attached, and writes
// BENCH_obs.json. The design budget is <5% overhead when enabled and zero
// when disabled; TestObsOverheadSmoke enforces the enabled budget with
// scheduling slack, and TestDisabledPathAllocationFree (internal/obs) pins
// the disabled one.
func BenchmarkObsOverhead(b *testing.B) {
	g := obsGrid(b)
	gd := guidance.Uniform(len(g.Place.Circuit.Nets))
	hg, err := hetgraph.Build(g, hetgraph.Config{})
	if err != nil {
		b.Fatal(err)
	}
	m := gnn3d.New(gnn3d.Config{Seed: 1, Hidden: 16, Layers: 2, RBFBins: 8})
	workloads := []struct {
		name string
		run  func(ctx context.Context) error
	}{
		{"route", func(ctx context.Context) error {
			_, err := route.RouteCtx(ctx, g, gd, route.Config{})
			return err
		}},
		{"relax", func(ctx context.Context) error {
			_, err := relax.Optimize(ctx, m, hg, relax.Config{Restarts: 4, MaxIter: 10, Seed: 1})
			return err
		}},
	}

	rep := obsReport{
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		DegenerateHost: runtime.NumCPU() < 2,
	}
	const reps = 5
	for _, w := range workloads {
		if err := w.run(context.Background()); err != nil { // warm-up
			b.Fatal(err)
		}
		off := medianWall(b, reps, func() error { return w.run(context.Background()) })
		tel := obs.New(obs.Options{Seed: 1})
		ctx := obs.WithTelemetry(context.Background(), tel)
		on := medianWall(b, reps, func() error { return w.run(ctx) })
		row := obsBenchRow{
			Workload:    w.name,
			OffMs:       float64(off.Microseconds()) / 1e3,
			OnMs:        float64(on.Microseconds()) / 1e3,
			OverheadPct: (on.Seconds()/off.Seconds() - 1) * 100,
			Events:      tel.Recorder().Total(),
		}
		rep.Rows = append(rep.Rows, row)
		b.Logf("%-6s off %8.2fms  on %8.2fms  overhead %+6.2f%%  events=%d",
			w.name, row.OffMs, row.OnMs, row.OverheadPct, row.Events)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := atomicfile.WriteFile("BENCH_obs.json", append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Log("wrote BENCH_obs.json")

	tel := obs.New(obs.Options{Seed: 1})
	ctx := obs.WithTelemetry(context.Background(), tel)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := route.RouteCtx(ctx, g, gd, route.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestObsOverheadSmoke is the cheap CI guard behind BenchmarkObsOverhead: the
// telemetry-on median of one routing pass must stay within the 5% budget plus
// a fixed scheduling-noise allowance. The absolute slack keeps a loaded CI
// host from flaking the suite while still catching a real regression (an
// accidental allocation or lock inside the A* loop shows up as tens of
// percent, not five).
func TestObsOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead timing in -short mode")
	}
	g := obsGrid(t)
	gd := guidance.Uniform(len(g.Place.Circuit.Nets))
	run := func(ctx context.Context) error {
		_, err := route.RouteCtx(ctx, g, gd, route.Config{})
		return err
	}
	if err := run(context.Background()); err != nil { // warm-up
		t.Fatal(err)
	}
	const reps = 5
	off := medianWall(t, reps, func() error { return run(context.Background()) })
	tel := obs.New(obs.Options{Seed: 1})
	ctx := obs.WithTelemetry(context.Background(), tel)
	on := medianWall(t, reps, func() error { return run(ctx) })

	slack := 10 * time.Millisecond
	budget := time.Duration(float64(off)*1.05) + slack
	t.Logf("route median: off=%v on=%v budget=%v events=%d", off, on, budget, tel.Recorder().Total())
	if on > budget {
		t.Errorf("telemetry overhead too high: on=%v > 1.05*off+%v (off=%v)", on, slack, off)
	}
	if tel.Recorder().Total() == 0 {
		t.Error("telemetry-on run recorded no events — instrumentation is disconnected")
	}
}
