module analogfold

go 1.22
