package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"path/filepath"

	"analogfold/internal/atomicfile"
	"analogfold/internal/circuit"
	"analogfold/internal/core"
	"analogfold/internal/export"
	"analogfold/internal/extract"
	"analogfold/internal/grid"
	"analogfold/internal/guidance"
	"analogfold/internal/place"
	"analogfold/internal/route"
	"analogfold/internal/tech"
)

// cmdAblate runs the design-choice ablation study of DESIGN.md §4.
func cmdAblate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("ablate", flag.ExitOnError)
	bench := fs.String("bench", "OTA1-A", "benchmark")
	opts := optionsFlags(fs)
	prof := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := prof.start(); err != nil {
		return err
	}
	defer prof.stop()
	c, p, err := parseBench(*bench)
	if err != nil {
		return err
	}
	f, err := core.NewFlow(c, p, opts())
	if err != nil {
		return err
	}
	a, err := f.RunAblation(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("Benchmark %s\n", *bench)
	fmt.Print(core.FormatAblation(a))
	return nil
}

// cmdExport writes the SPICE netlist, SPEF parasitics and DEF layout of a
// routed benchmark.
func cmdExport(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	bench := fs.String("bench", "OTA1-A", "benchmark")
	outDir := fs.String("out", ".", "output directory")
	seed := fs.Int64("seed", 1, "placement seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, prof, err := parseBench(*bench)
	if err != nil {
		return err
	}
	p, err := place.Place(c, place.Config{Profile: prof, Seed: *seed})
	if err != nil {
		return err
	}
	g, err := grid.Build(p, tech.Sim40())
	if err != nil {
		return err
	}
	res, err := route.RouteCtx(ctx, g, guidance.Uniform(len(c.Nets)), route.Config{})
	if err != nil {
		return err
	}
	par := extract.Extract(g, res)

	// Render each artifact in memory and publish it atomically, so an
	// interrupted export never leaves a torn .sp/.spef/.def on disk.
	write := func(name string, fn func(w io.Writer) error) error {
		path := filepath.Join(*outDir, name)
		var buf bytes.Buffer
		if err := fn(&buf); err != nil {
			return err
		}
		if err := atomicfile.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
		return nil
	}
	if err := write(c.Name+".sp", func(w io.Writer) error { return export.WriteSpice(w, c) }); err != nil {
		return err
	}
	if err := write(c.Name+".spef", func(w io.Writer) error { return export.WriteSPEF(w, c, par) }); err != nil {
		return err
	}
	return write(c.Name+".def", func(w io.Writer) error { return export.WriteDEF(w, g, res) })
}

// cmdTransient prints the small-signal step response of a benchmark before
// and after routing.
func cmdTransient(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("transient", flag.ExitOnError)
	bench := fs.String("bench", "OTA1-A", "benchmark")
	seed := fs.Int64("seed", 1, "placement seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, prof, err := parseBench(*bench)
	if err != nil {
		return err
	}
	p, err := place.Place(c, place.Config{Profile: prof, Seed: *seed})
	if err != nil {
		return err
	}
	g, err := grid.Build(p, tech.Sim40())
	if err != nil {
		return err
	}
	res, err := route.RouteCtx(ctx, g, guidance.Uniform(len(c.Nets)), route.Config{})
	if err != nil {
		return err
	}
	par := extract.Extract(g, res)

	const step = 1e-5
	show := func(label string, pr *extract.Parasitics) error {
		s, err := circuit.NewSimulator(c, pr)
		if err != nil {
			return err
		}
		tr, err := s.StepResponse(step, 2000)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s final %.4g V, settling %.1f ns, overshoot %.1f%%\n",
			label, tr.FinalValue, tr.SettlingTimeNs, tr.OvershootPct)
		return nil
	}
	fmt.Printf("%s step response (%.0f µV differential step)\n", *bench, step*1e6)
	if err := show("schematic", nil); err != nil {
		return err
	}
	return show("post-layout", par)
}

// cmdMC runs Monte Carlo offset analysis on a routed benchmark.
func cmdMC(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("mc", flag.ExitOnError)
	bench := fs.String("bench", "OTA1-A", "benchmark")
	n := fs.Int("n", 1000, "Monte Carlo samples")
	seed := fs.Int64("seed", 1, "seed")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	pr := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := pr.start(); err != nil {
		return err
	}
	defer pr.stop()
	c, prof, err := parseBench(*bench)
	if err != nil {
		return err
	}
	p, err := place.Place(c, place.Config{Profile: prof, Seed: *seed})
	if err != nil {
		return err
	}
	g, err := grid.Build(p, tech.Sim40())
	if err != nil {
		return err
	}
	res, err := route.RouteCtx(ctx, g, guidance.Uniform(len(c.Nets)), route.Config{})
	if err != nil {
		return err
	}
	s, err := circuit.NewSimulator(c, extract.Extract(g, res))
	if err != nil {
		return err
	}
	mc, err := s.MonteCarloOffsetWorkers(*n, *seed, *workers)
	if err != nil {
		return err
	}
	fmt.Printf("%s Monte Carlo offset (%d samples):\n", *bench, mc.Samples)
	fmt.Printf("  mean |Vos| %.1f µV, sigma %.1f µV, p99 %.1f µV, worst %.1f µV\n",
		mc.MeanUV, mc.StdUV, mc.P99UV, mc.WorstUV)
	return nil
}
