// Command analogfold reproduces the paper's experiments from the command
// line:
//
//	analogfold table1                    # benchmark statistics (Table 1)
//	analogfold table2 [-bench OTA1-A]    # method comparison (Table 2)
//	analogfold fig5   [-bench OTA1-A]    # runtime breakdown (Figure 5)
//	analogfold fig6   [-bench OTA1-A]    # routing solution SVGs (Figure 6)
//	analogfold fig1   [-bench OTA1-A]    # non-uniform guidance viz (Figure 1)
//	analogfold route  [-bench OTA1-A]    # route once, print stats + DRC
//	analogfold dataset [-bench OTA1-A]   # generate and save a training set
//	analogfold ablate [-bench OTA1-A]    # design-choice ablation study
//	analogfold export [-bench OTA1-A]    # SPICE + SPEF + DEF artifacts
//	analogfold transient [-bench OTA1-A] # step response before/after routing
//	analogfold validate [-bench OTA1-A]  # 3DGNN held-out generalization report
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"analogfold/internal/atomicfile"
	"analogfold/internal/cliutil"
	"analogfold/internal/cluster"
	"analogfold/internal/core"
	"analogfold/internal/dataset"
	"analogfold/internal/drc"
	"analogfold/internal/grid"
	"analogfold/internal/guidance"
	"analogfold/internal/netlist"
	"analogfold/internal/place"
	"analogfold/internal/route"
	"analogfold/internal/tech"
	"analogfold/internal/viz"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	// SIGINT/SIGTERM cancel the root context: every stage observes it and
	// unwinds with a typed fault instead of dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch cmd {
	case "table1":
		err = cmdTable1()
	case "table2":
		err = cmdTable2(ctx, args)
	case "fig5":
		err = cmdFig5(ctx, args)
	case "fig6":
		err = cmdFig6(ctx, args)
	case "fig1":
		err = cmdFig1(ctx, args)
	case "route":
		err = cmdRoute(ctx, args)
	case "dataset":
		err = cmdDataset(ctx, args)
	case "ablate":
		err = cmdAblate(ctx, args)
	case "export":
		err = cmdExport(ctx, args)
	case "transient":
		err = cmdTransient(ctx, args)
	case "validate":
		err = cmdValidate(ctx, args)
	case "bode":
		err = cmdBode(ctx, args)
	case "mc":
		err = cmdMC(ctx, args)
	case "train":
		err = cmdTrain(ctx, args)
	case "guidance":
		err = cmdGuidance(ctx, args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "analogfold:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: analogfold <table1|table2|fig5|fig6|fig1|route|dataset|ablate|export|transient|validate|bode|mc|train|guidance> [flags]`)
}

// parseBench resolves "-bench OTA1-A" through the shared core parser, so the
// CLI and the analogfoldd daemon accept exactly the same benchmark names.
func parseBench(name string) (*netlist.Circuit, place.Profile, error) {
	return core.ParseBenchmark(name)
}

// optionsFlags registers the flow-option flags shared with analogfoldd.
func optionsFlags(fs *flag.FlagSet) func() core.Options {
	return cliutil.OptionsFlags(fs)
}

func cmdTable1() error {
	fmt.Println("Table 1: Benchmark circuits information.")
	fmt.Printf("%-10s %7s %7s %6s %6s %7s %6s %7s\n",
		"Benchmark", "#PMOS", "#NMOS", "#Cap", "#Res", "#Dev", "#Nets", "#Total")
	for _, c := range netlist.Benchmarks() {
		s := c.Stats()
		fmt.Printf("%-10s %7d %7d %6d %6d %7d %6d %7d\n",
			c.Name, s.NumPMOS, s.NumNMOS, s.NumCap, s.NumRes, s.NumDevices, s.NumNets, s.Total)
	}
	return nil
}

func cmdTable2(ctx context.Context, args []string) (err error) {
	fs := flag.NewFlagSet("table2", flag.ExitOnError)
	bench := fs.String("bench", "", "single benchmark (e.g. OTA1-A); empty = all ten")
	jsonOut := fs.String("json", "", "also write a machine-readable report to this path")
	opts := optionsFlags(fs)
	obsFlags := cliutil.ObsFlags(fs)
	prof := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ob, err := obsFlags(opts().Seed)
	if err != nil {
		return err
	}
	defer ob.CloseInto(&err)
	ctx, end := ob.WithSpan(ctx, "cli.table2")
	defer end()
	if err := prof.start(); err != nil {
		return err
	}
	defer prof.stop()

	var rows []*core.Row
	run := func(c *netlist.Circuit, p place.Profile) error {
		ob.Logger.Info("running benchmark", "bench", fmt.Sprintf("%s-%s", c.Name, p))
		row, err := core.RunBenchmark(ctx, c, p, opts())
		if err != nil {
			return fmt.Errorf("%s-%s: %w", c.Name, p, err)
		}
		fmt.Print(core.FormatRow(row))
		rows = append(rows, row)
		return nil
	}
	if *bench != "" {
		c, p, err := parseBench(*bench)
		if err != nil {
			return err
		}
		if err := run(c, p); err != nil {
			return err
		}
	} else {
		for _, b := range core.Table2Benchmarks() {
			if err := run(b.Circuit, b.Profile); err != nil {
				return err
			}
		}
	}
	if len(rows) > 1 {
		fmt.Print(core.FormatSummary(core.Summarize(rows)))
		fmt.Print(core.FormatHeadline(core.HeadlineImprovements(rows)))
	}
	if *jsonOut != "" {
		rep := core.BuildJSONReport(rows, time.Now())
		if err := rep.WriteJSON(*jsonOut); err != nil {
			return err
		}
		ob.Logger.Info("wrote report", "path", *jsonOut)
	}
	return nil
}

func cmdFig5(ctx context.Context, args []string) (err error) {
	fs := flag.NewFlagSet("fig5", flag.ExitOnError)
	bench := fs.String("bench", "OTA1-A", "benchmark")
	opts := optionsFlags(fs)
	obsFlags := cliutil.ObsFlags(fs)
	prof := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ob, err := obsFlags(opts().Seed)
	if err != nil {
		return err
	}
	defer ob.CloseInto(&err)
	ctx, end := ob.WithSpan(ctx, "cli.fig5")
	defer end()
	if err := prof.start(); err != nil {
		return err
	}
	defer prof.stop()
	c, p, err := parseBench(*bench)
	if err != nil {
		return err
	}
	f, err := core.NewFlowCtx(ctx, c, p, opts())
	if err != nil {
		return err
	}
	out, err := f.RunAnalogFold(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("Benchmark %s, total %s\n", *bench, out.Times.Total())
	fmt.Print(core.FormatBreakdown(core.BreakdownOf(out.Times)))
	return nil
}

func cmdFig6(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("fig6", flag.ExitOnError)
	bench := fs.String("bench", "OTA1-A", "benchmark")
	outDir := fs.String("out", ".", "output directory for SVGs")
	opts := optionsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, p, err := parseBench(*bench)
	if err != nil {
		return err
	}
	f, err := core.NewFlow(c, p, opts())
	if err != nil {
		return err
	}
	// GeniusRoute solution.
	gen, err := f.RunGeniusRouted(ctx)
	if err != nil {
		return err
	}
	ours, err := f.RunAnalogFoldRouted(ctx)
	if err != nil {
		return err
	}
	for name, pair := range map[string]struct {
		res   *route.Result
		title string
	}{
		"fig6_genius.svg":     {gen, *bench + " GeniusRoute"},
		"fig6_analogfold.svg": {ours, *bench + " AnalogFold"},
	} {
		path := *outDir + "/" + name
		if err := atomicfile.WriteFile(path, []byte(viz.RoutingSVG(f.Grid, pair.res, pair.title)), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}

func cmdFig1(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("fig1", flag.ExitOnError)
	bench := fs.String("bench", "OTA1-A", "benchmark")
	outDir := fs.String("out", ".", "output directory")
	opts := optionsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, p, err := parseBench(*bench)
	if err != nil {
		return err
	}
	f, err := core.NewFlow(c, p, opts())
	if err != nil {
		return err
	}
	gd, err := f.DeriveGuidance(ctx)
	if err != nil {
		return err
	}
	svgPath := *outDir + "/fig1_guidance.svg"
	csvPath := *outDir + "/fig1_guidance.csv"
	if err := atomicfile.WriteFile(svgPath, []byte(viz.GuidanceSVG(f.Grid, gd, *bench+" non-uniform guidance")), 0o644); err != nil {
		return err
	}
	if err := atomicfile.WriteFile(csvPath, []byte(viz.GuidanceCSV(f.Grid, gd)), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", svgPath)
	fmt.Println("wrote", csvPath)
	return nil
}

func cmdRoute(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	bench := fs.String("bench", "OTA1-A", "benchmark")
	seed := fs.Int64("seed", 1, "placement seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, prof, err := parseBench(*bench)
	if err != nil {
		return err
	}
	p, err := place.Place(c, place.Config{Profile: prof, Seed: *seed})
	if err != nil {
		return err
	}
	g, err := grid.Build(p, tech.Sim40())
	if err != nil {
		return err
	}
	res, err := route.RouteCtx(ctx, g, guidance.Uniform(len(c.Nets)), route.Config{})
	if err != nil {
		return err
	}
	fmt.Printf("%s: routed in %d iterations\n", *bench, res.Iterations)
	fmt.Print(route.Report(g, res).String())
	vs := drc.Check(g, res)
	fmt.Printf("DRC: %d violations\n", len(vs))
	for _, v := range vs {
		fmt.Println("  ", v)
	}
	return nil
}

func cmdDataset(ctx context.Context, args []string) (err error) {
	fs := flag.NewFlagSet("dataset", flag.ExitOnError)
	bench := fs.String("bench", "OTA1-A", "benchmark")
	n := fs.Int("n", 48, "number of samples")
	out := fs.String("out", "dataset.json", "output file")
	seed := fs.Int64("seed", 1, "seed")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	coordinator := fs.String("coordinator", "", "coordinator base URL (e.g. http://host:8000): farm shards across the cluster instead of generating locally")
	shardSize := fs.Int("shard-size", 0, "samples per shard for distributed/resumable generation (0 = 32)")
	resumeDir := fs.String("resume-dir", "", "crash-safe shard journal directory; a killed run restarted with the same flags resumes instead of regenerating")
	obsFlags := cliutil.ObsFlags(fs)
	pr := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ob, err := obsFlags(*seed)
	if err != nil {
		return err
	}
	defer ob.CloseInto(&err)
	ctx, end := ob.WithSpan(ctx, "cli.dataset")
	defer end()
	if err := pr.start(); err != nil {
		return err
	}
	defer pr.stop()
	if *coordinator != "" {
		// Distributed path: the coordinator leases shards to its replicas and
		// answers with the dataset's canonical Save bytes, which are written
		// verbatim — the file is byte-identical to a local run's.
		return fetchDataset(ctx, *coordinator, cluster.DatasetRequest{
			Bench: *bench, Samples: *n, Seed: *seed, ShardSize: *shardSize,
			IncludeUniform: true,
		}, *out)
	}
	c, prof, err := parseBench(*bench)
	if err != nil {
		return err
	}
	p, err := place.Place(c, place.Config{Profile: prof, Seed: *seed})
	if err != nil {
		return err
	}
	g, err := grid.Build(p, tech.Sim40())
	if err != nil {
		return err
	}
	cfg := dataset.Config{Samples: *n, Seed: *seed, Workers: *workers,
		IncludeUniform: true, ShardSize: *shardSize}
	var ds *dataset.Dataset
	if *resumeDir != "" {
		var rep *dataset.ResumeReport
		ds, rep, err = dataset.GenerateResumable(ctx, c.Name, len(c.Nets), cfg, *resumeDir, dataset.LocalExec(g, cfg))
		if err != nil {
			return err
		}
		fmt.Printf("shards: %d resumed, %d generated, %d corrupt regenerated\n",
			rep.Resumed, rep.Generated, rep.Corrupt)
	} else {
		ds, err = dataset.Generate(ctx, g, cfg)
		if err != nil {
			return err
		}
	}
	if err := ds.Save(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %d samples to %s\n", len(ds.Entries), *out)
	return nil
}

// fetchDataset POSTs a distributed generation job to the coordinator and
// writes the response body verbatim (atomically), then loads it back through
// the digest-verifying dataset.Load so a truncated or corrupted transfer is
// rejected instead of silently trained on.
func fetchDataset(ctx context.Context, base string, req cluster.DatasetRequest, out string) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(base, "/")+"/v1/dataset", bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("coordinator: HTTP %d: %s", resp.StatusCode, firstLine(b))
	}
	if err := atomicfile.WriteFile(out, b, 0o644); err != nil {
		return err
	}
	ds, err := dataset.Load(out)
	if err != nil {
		return fmt.Errorf("coordinator response failed verification: %w", err)
	}
	if resumed := resp.Header.Get(cluster.HeaderResumed); resumed != "" && resumed != "0" {
		fmt.Printf("shards resumed from coordinator journal: %s\n", resumed)
	}
	fmt.Printf("wrote %d samples (%d dropped) to %s via %s\n",
		len(ds.Entries), ds.Dropped, out, base)
	return nil
}

// firstLine trims an error body to its first line for terminal display.
func firstLine(b []byte) string {
	s := strings.TrimSpace(string(b))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}
