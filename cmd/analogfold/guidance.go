package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"analogfold/internal/atomicfile"
	"analogfold/internal/cliutil"
	"analogfold/internal/core"
	"analogfold/internal/gnn3d"
	"analogfold/internal/serve"
)

// cmdTrain trains a 3DGNN on one benchmark and writes the checkpoint that
// analogfoldd loads at startup. The save is crash-safe (temp + fsync +
// rename), so a daemon restarting mid-train never sees a torn file.
func cmdTrain(ctx context.Context, args []string) (err error) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	bench := fs.String("bench", "OTA1-A", "benchmark")
	out := fs.String("out", "model.json", "checkpoint output path")
	cache := fs.String("cache", "", "artifact cache directory (reuses dataset/model when present)")
	opts := optionsFlags(fs)
	obsFlags := cliutil.ObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ob, err := obsFlags(opts().Seed)
	if err != nil {
		return err
	}
	defer ob.CloseInto(&err)
	ctx, end := ob.WithSpan(ctx, "cli.train")
	defer end()
	c, p, err := parseBench(*bench)
	if err != nil {
		return err
	}
	f, err := core.NewFlowCtx(ctx, c, p, opts())
	if err != nil {
		return err
	}
	m, _, err := f.LoadOrTrainModel(ctx, *cache)
	if err != nil {
		return err
	}
	if err := m.Save(*out); err != nil {
		return err
	}
	fmt.Println("wrote", *out)
	return nil
}

// cmdGuidance derives guidance sets from a saved checkpoint through the same
// warm path and response builder the analogfoldd daemon serves, so the file
// written here is byte-identical to the daemon's /v1/guidance body for the
// same checkpoint and knobs.
func cmdGuidance(ctx context.Context, args []string) (err error) {
	fs := flag.NewFlagSet("guidance", flag.ExitOnError)
	bench := fs.String("bench", "OTA1-A", "benchmark")
	model := fs.String("model", "model.json", "checkpoint path (from `analogfold train`)")
	out := fs.String("out", "guidance.json", "output path ('-' for stdout)")
	nderive := fs.Int("nderive", 0, "guidance sets to derive (0 = flow default)")
	opts := optionsFlags(fs)
	obsFlags := cliutil.ObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ob, err := obsFlags(opts().Seed)
	if err != nil {
		return err
	}
	defer ob.CloseInto(&err)
	ctx, end := ob.WithSpan(ctx, "cli.guidance")
	defer end()
	c, p, err := parseBench(*bench)
	if err != nil {
		return err
	}
	f, err := core.NewFlowCtx(ctx, c, p, opts())
	if err != nil {
		return err
	}
	m, err := gnn3d.Load(*model)
	if err != nil {
		return err
	}
	resp, err := serve.BuildGuidanceResponse(ctx, f, m, nil,
		serve.GuidanceRequest{Bench: *bench, NDerive: *nderive}, true)
	if resp == nil {
		return err
	}
	if err != nil {
		ob.Logger.Warn("degraded to uniform guidance", "err", err)
		err = nil
	}
	body, err := serve.MarshalBody(resp)
	if err != nil {
		return err
	}
	if *out == "-" {
		_, err = os.Stdout.Write(body)
		return err
	}
	if err := atomicfile.WriteFile(*out, body, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", *out)
	return nil
}
