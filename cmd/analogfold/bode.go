package main

import (
	"context"
	"flag"
	"fmt"
	"path/filepath"

	"analogfold/internal/atomicfile"
	"analogfold/internal/circuit"
	"analogfold/internal/extract"
	"analogfold/internal/grid"
	"analogfold/internal/guidance"
	"analogfold/internal/place"
	"analogfold/internal/route"
	"analogfold/internal/tech"
)

// cmdBode writes schematic and post-layout AC sweeps (Bode data) as CSV and
// prints the phase margins.
func cmdBode(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("bode", flag.ExitOnError)
	bench := fs.String("bench", "OTA1-A", "benchmark")
	outDir := fs.String("out", ".", "output directory")
	seed := fs.Int64("seed", 1, "placement seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, prof, err := parseBench(*bench)
	if err != nil {
		return err
	}
	p, err := place.Place(c, place.Config{Profile: prof, Seed: *seed})
	if err != nil {
		return err
	}
	g, err := grid.Build(p, tech.Sim40())
	if err != nil {
		return err
	}
	res, err := route.RouteCtx(ctx, g, guidance.Uniform(len(c.Nets)), route.Config{})
	if err != nil {
		return err
	}
	par := extract.Extract(g, res)

	emit := func(label string, pr *extract.Parasitics) error {
		s, err := circuit.NewSimulator(c, pr)
		if err != nil {
			return err
		}
		sweep, err := s.ACSweep(1, 1e10, 16)
		if err != nil {
			return err
		}
		path := filepath.Join(*outDir, fmt.Sprintf("bode_%s_%s.csv", c.Name, label))
		if err := atomicfile.WriteFile(path, []byte(circuit.SweepCSV(sweep)), 0o644); err != nil {
			return err
		}
		fmt.Printf("%-12s phase margin %.1f°  (%s)\n", label, circuit.PhaseMarginDeg(sweep), path)
		return nil
	}
	if err := emit("schematic", nil); err != nil {
		return err
	}
	return emit("postlayout", par)
}
