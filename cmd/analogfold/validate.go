package main

import (
	"context"
	"flag"
	"fmt"

	"analogfold/internal/core"
	"analogfold/internal/dataset"
	"analogfold/internal/gnn3d"
	"analogfold/internal/hetgraph"
	"analogfold/internal/stats"
	"analogfold/internal/tensor"
)

// metricLabels for validation reporting.
var metricLabels = [gnn3d.NumMetrics]string{"offset", "CMRR", "bandwidth", "gain", "noise"}

// cmdValidate measures the trained performance model's generalization: it
// trains on one corpus, labels a fresh held-out corpus, and reports per-
// metric Pearson and Spearman correlation between predictions and
// measurements. The Spearman column is the one the relaxation depends on —
// it only needs guidance candidates to be *ordered* correctly.
func cmdValidate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	bench := fs.String("bench", "OTA1-A", "benchmark")
	trainN := fs.Int("train", 200, "training corpus size")
	testN := fs.Int("test", 40, "held-out corpus size")
	seed := fs.Int64("seed", 1, "seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, prof, err := parseBench(*bench)
	if err != nil {
		return err
	}
	f, err := core.NewFlow(c, prof, core.Options{Seed: *seed})
	if err != nil {
		return err
	}

	trainDS, err := dataset.Generate(ctx, f.Grid, dataset.Config{
		Samples: *trainN, Seed: *seed, IncludeUniform: true,
	})
	if err != nil {
		return err
	}
	testDS, err := dataset.Generate(ctx, f.Grid, dataset.Config{
		Samples: *testN, Seed: *seed + 10_000,
	})
	if err != nil {
		return err
	}

	hg, err := hetgraph.Build(f.Grid, hetgraph.Config{})
	if err != nil {
		return err
	}
	model := gnn3d.New(gnn3d.Config{Seed: *seed})
	rep, err := model.Fit(ctx, hg, trainDS.Samples(), gnn3d.TrainConfig{Epochs: 60, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Printf("%s: trained on %d samples (%d epochs run), val loss %.4f\n",
		*bench, len(trainDS.Entries), len(rep.TrainLoss), rep.FinalVal())

	// One stacked forward labels the whole held-out corpus; each row is
	// bit-identical to a sequential Predict on that sample.
	cts := make([]*tensor.Tensor, len(testDS.Entries))
	for i, e := range testDS.Entries {
		cts[i] = tensor.FromSlice(append([]float64(nil), e.C...), testDS.NumNets, 3)
	}
	ys, err := model.PredictBatch(hg, cts)
	if err != nil {
		return err
	}
	var pred, meas [gnn3d.NumMetrics][]float64
	for i, e := range testDS.Entries {
		for k := 0; k < gnn3d.NumMetrics; k++ {
			pred[k] = append(pred[k], ys[i][k])
			meas[k] = append(meas[k], e.Y[k])
		}
	}
	fmt.Printf("held-out correlation over %d fresh samples:\n", len(testDS.Entries))
	fmt.Printf("  %-10s %9s %9s %12s\n", "metric", "pearson", "spearman", "label spread")
	for k := 0; k < gnn3d.NumMetrics; k++ {
		spread := stats.Std(meas[k]) / (1e-12 + stats.Mean(meas[k]))
		fmt.Printf("  %-10s %9.3f %9.3f %11.2f%%\n",
			metricLabels[k], stats.Pearson(pred[k], meas[k]), stats.Spearman(pred[k], meas[k]), 100*spread)
	}
	return nil
}
