package main

import (
	"flag"
	"testing"

	"analogfold/internal/place"
)

func TestParseBench(t *testing.T) {
	cases := []struct {
		in      string
		circuit string
		profile place.Profile
		ok      bool
	}{
		{"OTA1-A", "OTA1", place.ProfileA, true},
		{"OTA2-B", "OTA2", place.ProfileB, true},
		{"OTA3-C", "OTA3", place.ProfileC, true},
		{"OTA4-D", "OTA4", place.ProfileD, true},
		{"OTA1", "OTA1", place.ProfileA, true}, // default profile
		{"OTA9-A", "", "", false},
		{"OTA1-Z", "", "", false},
		{"", "", "", false},
	}
	for _, tc := range cases {
		c, p, err := parseBench(tc.in)
		if tc.ok {
			if err != nil {
				t.Errorf("parseBench(%q) unexpected error %v", tc.in, err)
				continue
			}
			if c.Name != tc.circuit || p != tc.profile {
				t.Errorf("parseBench(%q) = %s-%s", tc.in, c.Name, p)
			}
		} else if err == nil {
			t.Errorf("parseBench(%q) should fail", tc.in)
		}
	}
}

func TestCmdTable1(t *testing.T) {
	if err := cmdTable1(); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsFlagsQuick(t *testing.T) {
	// -quick must produce strictly smaller settings than the defaults.
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	get := optionsFlags(fs)
	if err := fs.Parse([]string{"-quick"}); err != nil {
		t.Fatal(err)
	}
	q := get()

	fs2 := flag.NewFlagSet("t2", flag.ContinueOnError)
	get2 := optionsFlags(fs2)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	d := get2()
	if q.Samples >= d.Samples || q.TrainEpochs >= d.TrainEpochs {
		t.Errorf("-quick not smaller: %+v vs %+v", q, d)
	}
}
