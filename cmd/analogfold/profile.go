package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// profiler holds the -cpuprofile/-memprofile/-trace flag values for one
// subcommand and the files opened while profiling is active.
type profiler struct {
	cpu, mem, trc *string
	cpuFile       *os.File
	trcFile       *os.File
}

// profileFlags registers the profiling flags on a subcommand's FlagSet.
// Call start after fs.Parse and defer the returned stop.
func profileFlags(fs *flag.FlagSet) *profiler {
	p := &profiler{}
	p.cpu = fs.String("cpuprofile", "", "write a CPU profile to this file")
	p.mem = fs.String("memprofile", "", "write a heap profile to this file on exit")
	p.trc = fs.String("trace", "", "write a runtime execution trace to this file")
	return p
}

// start begins CPU profiling and execution tracing if requested.
func (p *profiler) start() error {
	if *p.cpu != "" {
		f, err := os.Create(*p.cpu)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		p.cpuFile = f
	}
	if *p.trc != "" {
		f, err := os.Create(*p.trc)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return fmt.Errorf("trace: %w", err)
		}
		p.trcFile = f
	}
	return nil
}

// stop flushes every active profile. Safe to call when nothing was enabled.
func (p *profiler) stop() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		p.cpuFile.Close()
		slog.Info("wrote CPU profile", "path", *p.cpu)
	}
	if p.trcFile != nil {
		trace.Stop()
		p.trcFile.Close()
		slog.Info("wrote execution trace", "path", *p.trc)
	}
	if *p.mem != "" {
		f, err := os.Create(*p.mem)
		if err != nil {
			slog.Error("memprofile", "err", err)
			return
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
			slog.Error("memprofile", "err", err)
			return
		}
		slog.Info("wrote heap profile", "path", *p.mem)
	}
}
