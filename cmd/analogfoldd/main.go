// Command analogfoldd is the AnalogFold guidance-serving daemon: it loads a
// trained 3DGNN checkpoint once, keeps per-benchmark placed flows warm, and
// serves relaxation-derived guidance and full guided-routing runs over HTTP.
//
//	analogfoldd -model model.json -addr :8080 -warm OTA1-A
//
//	POST /v1/guidance  {"bench":"OTA1-A","seed":7}   → guidance sets
//	POST /v1/route     {"bench":"OTA1-A"}            → routed result + metrics
//	GET  /healthz /readyz /metrics /debug/flight /debug/slo
//
// With -debug-addr a second listener serves net/http/pprof, /debug/vars and
// the flight recorder, kept off the service port so profiling endpoints are
// never exposed to clients by accident.
//
// Robustness: a bounded admission queue sheds overload with 503+Retry-After,
// a circuit breaker around model evaluation degrades responses down the
// elite→uniform→MagicalRoute ladder while open, handler panics become typed
// 500s, and SIGTERM drains in-flight requests before exit.
//
// With -coordinator, the same binary runs as the cluster front door instead
// of a worker: it shards requests across the -replicas set by netlist-digest
// rendezvous hashing, fails over with jittered backoff, hedges slow requests
// after a latency-percentile budget, and — when every replica is down —
// answers from an embedded nil-model degradation ladder:
//
//	analogfoldd -coordinator -replicas http://r1:8080,http://r2:8080 -addr :8000
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"analogfold/internal/cliutil"
	"analogfold/internal/cluster"
	"analogfold/internal/gnn3d"
	"analogfold/internal/obs"
	"analogfold/internal/serve"
)

func main() {
	fs := flag.NewFlagSet("analogfoldd", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	debugAddr := fs.String("debug-addr", "", "separate diagnostics listener (pprof, /debug/vars, /debug/flight); empty disables")
	model := fs.String("model", "model.json", "3DGNN checkpoint (from `analogfold train`)")
	warm := fs.String("warm", "", "comma-separated benchmarks to place before serving (e.g. OTA1-A,OTA2-B)")
	queue := fs.Int("queue", 4, "admission queue capacity (concurrently executing requests)")
	backlog := fs.Int("backlog", 0, "admission waiting-room bound (0 = 4x queue)")
	admissionTO := fs.Duration("admission-timeout", time.Second, "max wait for a queue slot before shedding with 503")
	requestTO := fs.Duration("request-timeout", 5*time.Minute, "per-request pipeline deadline")
	drainTO := fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on SIGTERM")
	brkThreshold := fs.Int("breaker-threshold", 3, "consecutive model faults that open the circuit breaker")
	brkCooldown := fs.Duration("breaker-cooldown", 30*time.Second, "open interval before a half-open probe")
	cacheEntries := fs.Int("cache-entries", 1024, "content-addressed result cache bound (0 disables caching)")
	batchWindow := fs.Duration("batch-window", 2*time.Millisecond, "guidance micro-batch admission window (0 disables batching)")
	batchMax := fs.Int("batch-max", 8, "max requests coalesced into one guidance scoring wave")
	coordinator := fs.Bool("coordinator", false, "run as the cluster coordinator instead of a worker daemon")
	replicas := fs.String("replicas", "", "comma-separated replica base URLs (coordinator mode)")
	probeInterval := fs.Duration("probe-interval", 2*time.Second, "replica health probe period (coordinator mode)")
	attemptTO := fs.Duration("attempt-timeout", 2*time.Minute, "per-replica attempt deadline (coordinator mode)")
	hedgeAfter := fs.Duration("hedge-after", 250*time.Millisecond, "static hedge budget before latency samples accumulate (coordinator mode)")
	hedgePct := fs.Float64("hedge-percentile", 0.95, "latency percentile driving the adaptive hedge budget; <0 pins the static -hedge-after (coordinator mode)")
	maxHedges := fs.Int("max-hedges", 1, "max hedged attempts per request (coordinator mode)")
	retryBackoff := fs.Duration("retry-backoff", 5*time.Millisecond, "base failover backoff, doubled per attempt with hash-deterministic jitter (coordinator mode)")
	busyDepth := fs.Int64("busy-queue-depth", 16, "scraped replica queue depth that grades it degraded (coordinator mode)")
	leaseTTL := fs.Duration("lease-ttl", 5*time.Minute, "dataset shard lease tenure before the shard is re-dispatched (coordinator mode)")
	datasetDir := fs.String("dataset-dir", "", "crash-safe dataset manifest journal root; empty disables resume (coordinator mode)")
	datasetShardSize := fs.Int("dataset-shard-size", 0, "default samples per dataset shard (0 = 32, coordinator mode)")
	sloLatencyMS := fs.Int("slo-latency-ms", 0, "latency SLO target in milliseconds for the /debug/slo burn-rate engine (0 disables the latency objective)")
	sloAvailability := fs.Float64("slo-availability", 0, "availability SLO objective, e.g. 0.999 (0 disables; both 0 turns /debug/slo off)")
	opts := cliutil.OptionsFlags(fs)
	logf := cliutil.LogFlags(fs)
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	lg, err := logf()
	if err != nil {
		fmt.Fprintln(os.Stderr, "analogfoldd:", err)
		os.Exit(2)
	}
	o := opts()
	// The daemon's telemetry is always on: the flight recorder backs the
	// /debug/flight endpoint, so there is no trace file to opt into.
	tel := obs.New(obs.Options{Seed: o.Seed, Logger: lg})
	if *coordinator {
		if err := runCoordinator(*addr, *warm, cluster.Config{
			Replicas:         splitList(*replicas),
			ProbeInterval:    *probeInterval,
			AttemptTimeout:   *attemptTO,
			HedgeAfter:       *hedgeAfter,
			HedgePercentile:  *hedgePct,
			MaxHedges:        *maxHedges,
			RetryBackoff:     *retryBackoff,
			BusyQueueDepth:   *busyDepth,
			DrainTimeout:     *drainTO,
			LeaseTTL:         *leaseTTL,
			DatasetDir:       *datasetDir,
			DatasetShardSize: *datasetShardSize,
			Logger:           lg,
			Telemetry:        tel,
			SLOLatency:       time.Duration(*sloLatencyMS) * time.Millisecond,
			SLOAvailability:  *sloAvailability,
		}, serve.Config{Opts: o, Logger: lg, Telemetry: tel}); err != nil {
			lg.Error("analogfoldd coordinator exiting", "err", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*addr, *debugAddr, *model, *warm, serve.Config{
		QueueCapacity:    *queue,
		QueueBacklog:     *backlog,
		AdmissionTimeout: *admissionTO,
		RequestTimeout:   *requestTO,
		DrainTimeout:     *drainTO,
		BreakerThreshold: *brkThreshold,
		BreakerCooldown:  *brkCooldown,
		CacheEntries:     *cacheEntries,
		BatchWindow:      *batchWindow,
		BatchMax:         *batchMax,
		SLOLatency:       time.Duration(*sloLatencyMS) * time.Millisecond,
		SLOAvailability:  *sloAvailability,
		Opts:             o,
		Logger:           lg,
		Telemetry:        tel,
	}); err != nil {
		lg.Error("analogfoldd exiting", "err", err)
		os.Exit(1)
	}
}

// splitList parses a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// runCoordinator is the -coordinator entrypoint: no checkpoint is loaded —
// replicas own the model — but a nil-model local server (warmed from -warm)
// is embedded as the last-ditch degradation rung for a full replica outage.
func runCoordinator(addr, warm string, cfg cluster.Config, localCfg serve.Config) error {
	if len(cfg.Replicas) == 0 {
		return fmt.Errorf("coordinator mode needs at least one -replicas URL")
	}
	local := serve.New(nil, localCfg)
	for _, b := range splitList(warm) {
		localCfg.Logger.Info("warming local fallback benchmark", "bench", b)
		if err := local.Warm([]string{b}); err != nil {
			return fmt.Errorf("warm local fallback %s: %w", b, err)
		}
	}
	cfg.Local = local
	c := cluster.New(cfg)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return c.ListenAndServe(ctx, addr)
}

func run(addr, debugAddr, modelPath, warm string, cfg serve.Config) error {
	m, err := gnn3d.Load(modelPath)
	if err != nil {
		return fmt.Errorf("load checkpoint: %w", err)
	}
	s := serve.New(m, cfg)
	if warm != "" {
		for _, b := range strings.Split(warm, ",") {
			b = strings.TrimSpace(b)
			if b == "" {
				continue
			}
			cfg.Logger.Info("warming benchmark", "bench", b)
			if err := s.Warm([]string{b}); err != nil {
				return fmt.Errorf("warm %s: %w", b, err)
			}
		}
	}
	// SIGTERM/SIGINT cancel the context; Serve drains and returns.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if debugAddr != "" {
		dbg := &http.Server{Addr: debugAddr, Handler: s.DebugHandler()}
		go func() {
			cfg.Logger.Info("debug listener starting", "addr", debugAddr)
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				cfg.Logger.Error("debug listener failed", "err", err)
			}
		}()
		defer func() {
			shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = dbg.Shutdown(shCtx)
		}()
	}
	return s.ListenAndServe(ctx, addr)
}
