# AnalogFold build/test entry points. `make ci` mirrors scripts/ci.sh.

GO ?= go

.PHONY: build test vet race bench bench-parallel ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the packages that execute work concurrently under the race
# detector with short settings; the full suite under -race is much slower.
race:
	$(GO) test -race ./internal/parallel/ ./internal/relax/ ./internal/circuit/ ./internal/gnn3d/ ./internal/dataset/

bench:
	$(GO) test -bench=. -benchmem .

# bench-parallel measures the serial-vs-parallel wall time of the
# parallelized phases and writes BENCH_parallel.json.
bench-parallel:
	$(GO) test -run NONE -bench BenchmarkParallelSpeedup -benchtime 1x .

ci:
	./scripts/ci.sh
