# AnalogFold build/test entry points. `make ci` mirrors scripts/ci.sh.

GO ?= go

.PHONY: build test vet errcheck race chaos serve-chaos cluster-chaos dataset-chaos fuzz-smoke bench bench-parallel bench-route bench-model bench-serve obs-bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# errcheck is a grep-based pass over the repo's error-returning helpers:
# bare statement calls that drop an error fail the build.
errcheck:
	./scripts/errcheck.sh

# race runs the packages that execute work concurrently under the race
# detector with short settings; the full suite under -race is much slower.
race:
	$(GO) test -race ./internal/obs/ ./internal/parallel/ ./internal/relax/ ./internal/circuit/ ./internal/gnn3d/ ./internal/ad/ ./internal/tensor/ ./internal/dataset/ ./internal/route/ ./internal/servecache/ ./internal/serve/ ./internal/cluster/

# chaos compiles the deterministic fault scheduler into the injection points
# (faultinject build tag) and runs the fault-injection suite under the race
# detector: every injected fault must recover or surface a typed error.
chaos:
	$(GO) test -race -count=1 -tags faultinject ./internal/fault/... ./internal/parallel/ ./internal/relax/ ./internal/route/ ./internal/core/

# serve-chaos runs the daemon's fault-injection suite under the race
# detector: concurrent clients against a poisoned model must get typed errors
# or well-formed degraded responses, the breaker must open, and SIGTERM must
# drain without leaking goroutines.
serve-chaos:
	$(GO) test -race -count=1 -tags faultinject ./internal/serve/

# cluster-chaos runs the coordinator's replica-kill suite under the race
# detector: replicas are killed mid-drain, mid-request and mid-hedge while
# concurrent clients hammer the coordinator — no request may be lost or
# double-answered, answers must be bit-identical to a single-daemon run while
# any healthy replica exists, accounting must reconcile (accepted ==
# answered + shed), and the coordinator's drain must leak no goroutines.
cluster-chaos:
	$(GO) test -race -count=1 -tags faultinject ./internal/cluster/

# dataset-chaos runs the corpus generator's fault-injection suite under the
# race detector: injected label failures must drop samples (refusing the whole
# corpus only past the half-empty threshold), NaN labels must never reach the
# corpus, and cancellation mid-fan-out must leak no goroutines.
dataset-chaos:
	$(GO) test -race -count=1 -tags faultinject ./internal/dataset/

# fuzz-smoke gives each native fuzz target a short budget: enough to catch a
# freshly introduced panic or untyped error, cheap enough for every CI run.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzNetlistBuild -fuzztime 10s ./internal/netlist/
	$(GO) test -run '^$$' -fuzz FuzzTensorTryFromSlice -fuzztime 10s ./internal/tensor/

bench:
	$(GO) test -bench=. -benchmem .

# bench-parallel measures the serial-vs-parallel wall time of the
# parallelized phases and writes BENCH_parallel.json.
bench-parallel:
	$(GO) test -run NONE -bench BenchmarkParallelSpeedup -benchtime 1x .

# bench-route measures the detailed-router hot path per OTA benchmark
# (wall time, allocs, routed quality) and writes BENCH_route.json; the
# in-package micro-benchmarks cover the A* core and negotiation loop.
bench-route:
	$(GO) test -run NONE -bench BenchmarkRouteReport -benchtime 1x .
	$(GO) test -run NONE -bench 'BenchmarkAstarCore|BenchmarkRouteNegotiation' -benchmem -benchtime 100x ./internal/route/

# bench-model measures the 3DGNN inference core (tape-backed session vs the
# transient path, batched vs sequential candidate scoring) and writes
# BENCH_model.json; the in-package micro-benchmarks cover the same arms with
# go-bench statistics.
bench-model:
	$(GO) test -run NONE -bench BenchmarkModelReport -benchtime 1x .
	$(GO) test -run NONE -bench 'BenchmarkModelCore|BenchmarkCandidateScoring|BenchmarkRelaxStep' -benchmem -benchtime 100x ./internal/gnn3d/ ./internal/relax/

# bench-serve measures batch-first serving (duplicate-heavy mix against the
# result cache + singleflight, all-distinct mix through micro-batch scoring
# waves, wave-scoring allocation model) and writes BENCH_serve.json.
bench-serve:
	$(GO) test -run NONE -bench BenchmarkServeThroughput -benchtime 1x .

# obs-bench measures the telemetry layer's enabled-path overhead on each
# instrumented hot path (routing, relaxation) and writes BENCH_obs.json;
# the budget is <5%, enforced cheaply in CI by TestObsOverheadSmoke.
obs-bench:
	$(GO) test -run NONE -bench BenchmarkObsOverhead -benchtime 1x .

ci:
	./scripts/ci.sh
